/**
 * @file
 * Store buffer (paper Section V-B): holds committed stores that have
 * not yet been written into the L1 D cache. Used by the WMM memory
 * model; TSO bypasses it (stores issue from the SQ head). Coalesces
 * same-line stores and answers load forwarding searches.
 */
#pragma once

#include "cache/msg.hh"
#include "core/cmd.hh"

namespace riscy {

class StoreBuffer : public cmd::Module
{
  public:
    StoreBuffer(cmd::Kernel &k, const std::string &name, uint32_t entries);

    struct SearchResult {
        bool full = false;    ///< all requested bytes present
        bool partial = false; ///< some but not all bytes present
        uint8_t idx = 0;      ///< entry that matched
        uint64_t data = 0;    ///< value when full
    };

    struct DeqResult {
        Addr line = 0;
        Line data;
        uint64_t byteMask = 0;
    };

    // ---- probes
    bool empty() const { return used_.read() == 0; }
    /** Can a store to @p addr enter (free entry or coalescible)? */
    bool canEnq(Addr addr) const;
    bool canIssue() const { return findUnissued() >= 0; }

    /** Insert (possibly coalescing) a committed store. */
    void enq(Addr addr, uint64_t data, uint8_t bytes);
    /** Pick an unissued entry and mark it issued; returns its index. */
    uint8_t issue(Addr &line);
    /** Remove entry @p idx, returning its contents (paper deq). */
    DeqResult deq(uint8_t idx);
    /** Forwarding search for a load (paper search). */
    SearchResult search(Addr addr, uint8_t bytes) const;

    cmd::Method &enqM, &issueM, &deqM, &searchM;

  private:
    struct Entry {
        bool valid = false;
        bool issued = false;
        Addr line = 0;
        Line data;
        uint64_t byteMask = 0;
    };

    int findLine(Addr line) const;
    int findFree() const;
    int findUnissued() const;

    uint32_t entries_;
    cmd::RegArray<Entry> arr_;
    cmd::Reg<uint32_t> used_;
    cmd::Stat &coalesced_, &issued_;
};

} // namespace riscy
