#include "lsq/lsq.hh"

#include "isa/exec.hh"

namespace riscy {

using namespace cmd;

Lsq::Lsq(Kernel &k, const std::string &name, uint32_t lqSize,
         uint32_t sqSize, bool tso)
    : Module(k, name, Conflict::CF),
      enqLdM(method("enqLd")), enqStM(method("enqSt")),
      updateLdM(method("updateLd")), updateStM(method("updateSt")),
      issueLdM(method("issueLd")), respLdM(method("respLd")),
      wakeupBySBDeqM(method("wakeupBySBDeq")),
      cacheEvictM(method("cacheEvict")),
      setAtCommitStM(method("setAtCommitSt")),
      markStIssuedM(method("markStIssued")),
      markStPrefetchedM(method("markStPrefetched")),
      deqLdM(method("deqLd")),
      deqStM(method("deqSt")), dropLdM(method("dropLd")),
      wrongSpecM(method("wrongSpec")), correctSpecM(method("correctSpec")),
      flushM(method("flushAll")),
      lqSize_(lqSize), sqSize_(sqSize), tso_(tso),
      lq_(k, name + ".lq", lqSize), sq_(k, name + ".sq", sqSize),
      lqWaitWrongPath_(k, name + ".lqWwp", lqSize, 0),
      lqHead_(k, name + ".lqHead", 0), lqTail_(k, name + ".lqTail", 0),
      lqCount_(k, name + ".lqCount", 0),
      sqHead_(k, name + ".sqHead", 0), sqTail_(k, name + ".sqTail", 0),
      sqCount_(k, name + ".sqCount", 0),
      memSeq_(k, name + ".memSeq", 0),
      ldKills_(stats().counter("ldKills")),
      evictKills_(stats().counter("evictKills")),
      forwards_(stats().counter("forwards")),
      stalls_(stats().counter("stalls"))
{
    // Paper Section V-C: issueLd < wakeupBySBDeq so that doIssueLd and
    // doRespSt can fire in one cycle with doIssueLd logically first.
    lt(issueLdM, wakeupBySBDeqM);
    selfCf(wrongSpecM);
    selfCf(correctSpecM);
    selfCf(setAtCommitStM); // two stores may commit in one group
    selfCf(updateLdM);      // addr-calc misalign + TLB response
    selfCf(updateStM);
    lt(wrongSpecM, enqLdM);
    lt(wrongSpecM, enqStM);
    lt(updateLdM, wrongSpecM);
    lt(updateStM, wrongSpecM);
    lt(respLdM, wrongSpecM);
    setCm(flushM, enqLdM, Conflict::C);
    setCm(flushM, enqStM, Conflict::C);
    setCm(flushM, deqLdM, Conflict::C);
    setCm(flushM, deqStM, Conflict::C);
}

uint8_t
Lsq::enqLd(isa::Op op, uint8_t bytes, RobIdx rob, PhysReg pd, bool hasPd,
           SpecMask mask)
{
    enqLdM();
    require(lqCount_.read() < lqSize_);
    uint32_t i = lqTail_.read();
    LqEntry e;
    e.valid = true;
    e.state = LdState::Idle;
    e.op = op;
    e.bytes = bytes;
    e.rob = rob;
    e.pd = pd;
    e.hasPd = hasPd;
    e.memSeq = memSeq_.read();
    e.specMask = mask;
    lq_.write(i, e);
    lqTail_.write((i + 1) % lqSize_);
    lqCount_.write(lqCount_.read() + 1);
    memSeq_.write(memSeq_.read() + 1);
    return static_cast<uint8_t>(i);
}

uint8_t
Lsq::enqSt(isa::Op op, uint8_t bytes, RobIdx rob, PhysReg pd, bool hasPd,
           SpecMask mask)
{
    enqStM();
    require(sqCount_.read() < sqSize_);
    uint32_t i = sqTail_.read();
    SqEntry e;
    e.valid = true;
    e.op = op;
    e.bytes = bytes;
    e.rob = rob;
    e.pd = pd;
    e.hasPd = hasPd;
    e.memSeq = memSeq_.read();
    e.specMask = mask;
    sq_.write(i, e);
    sqTail_.write((i + 1) % sqSize_);
    sqCount_.write(sqCount_.read() + 1);
    memSeq_.write(memSeq_.read() + 1);
    return static_cast<uint8_t>(i);
}

void
Lsq::updateLd(uint8_t idx, Addr va, Addr pa, bool fault, uint8_t cause,
              bool mmio)
{
    updateLdM();
    LqEntry e = lq_.read(idx);
    if (!e.valid)
        panic("%s: updateLd on invalid entry %u", name().c_str(), idx);
    e.va = va;
    e.pa = pa;
    e.addrValid = !fault;
    e.fault = fault;
    e.cause = cause;
    e.mmio = mmio;
    lq_.write(idx, e);
}

void
Lsq::updateSt(uint8_t idx, Addr va, Addr pa, bool fault, uint8_t cause,
              bool mmio, uint64_t data)
{
    updateStM();
    SqEntry e = sq_.read(idx);
    if (!e.valid)
        panic("%s: updateSt on invalid entry %u", name().c_str(), idx);
    e.va = va;
    e.pa = pa;
    e.addrValid = !fault;
    e.fault = fault;
    e.cause = cause;
    e.mmio = mmio;
    e.data = data;
    e.dataValid = true;
    sq_.write(idx, e);

    // Memory-dependency violation: younger loads that already read an
    // overlapping location are marked to-be-killed (paper update()).
    if (!fault && !mmio) {
        for (uint32_t n = 0; n < lqCount_.read(); n++) {
            uint32_t i = (lqHead_.read() + n) % lqSize_;
            LqEntry ld = lq_.read(i);
            if (!ld.valid || ld.killed || ld.memSeq < e.memSeq ||
                !ld.addrValid)
                continue;
            if (ld.state == LdState::Idle)
                continue;
            if (overlap(ld.pa, ld.bytes, pa, e.bytes)) {
                ld.killed = true;
                lq_.write(i, ld);
                ldKills_.inc();
            }
        }
    }
}

int
Lsq::getIssueLd() const
{
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        const LqEntry &e = lq_.read(i);
        if (e.valid && e.state == LdState::Idle && e.addrValid &&
            !e.fault && !e.mmio && !e.killed &&
            e.stallSrc == StallSrc::None && !lqWaitWrongPath_.read(i) &&
            !isa::Inst{e.op}.isAtomic())
            return static_cast<int>(i);
    }
    return -1;
}

Lsq::IssueResult
Lsq::issueLd(uint8_t idx, const StoreBuffer::SearchResult &sb, bool useSb,
             uint64_t &fwdValue)
{
    issueLdM();
    LqEntry e = lq_.read(idx);
    require(e.valid && e.state == LdState::Idle);

    // Search older stores in the SQ, youngest first.
    int bestSq = -1;
    uint32_t bestSeq = 0;
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        const SqEntry &st = sq_.read(i);
        if (!st.valid || st.memSeq > e.memSeq || !st.addrValid)
            continue;
        if (!overlap(st.pa, st.bytes, e.pa, e.bytes))
            continue;
        if (bestSq < 0 || st.memSeq > bestSeq) {
            bestSq = static_cast<int>(i);
            bestSeq = st.memSeq;
        }
    }

    if (bestSq >= 0) {
        const SqEntry &st = sq_.read(bestSq);
        if (covers(st.pa, st.bytes, e.pa, e.bytes) && st.dataValid &&
            !isa::Inst{st.op}.isAtomic()) {
            unsigned shift = static_cast<unsigned>((e.pa - st.pa) * 8);
            fwdValue = isa::loadExtend(e.op, st.data >> shift);
            // The value is delivered through the forward queue, so the
            // entry waits in Issued like a cache request (respLd will
            // complete it after the PRF write).
            e.state = LdState::Issued;
            lq_.write(idx, e);
            forwards_.inc();
            return IssueResult::Forward;
        }
        // Partially overlapped or data-not-ready older store: stall
        // until that SQ entry drains (paper: record the source).
        e.stallSrc = StallSrc::SqEntry;
        e.stallIdx = static_cast<uint8_t>(bestSq);
        lq_.write(idx, e);
        stalls_.inc();
        return IssueResult::Stall;
    }

    if (useSb && sb.full) {
        fwdValue = isa::loadExtend(e.op, sb.data);
        e.state = LdState::Issued;
        lq_.write(idx, e);
        forwards_.inc();
        return IssueResult::Forward;
    }
    if (useSb && sb.partial) {
        e.stallSrc = StallSrc::SbEntry;
        e.stallIdx = sb.idx;
        lq_.write(idx, e);
        stalls_.inc();
        return IssueResult::Stall;
    }

    e.state = LdState::Issued;
    lq_.write(idx, e);
    return IssueResult::ToCache;
}

bool
Lsq::respLd(uint8_t idx, uint64_t value)
{
    respLdM();
    if (lqWaitWrongPath_.read(idx)) {
        // Paper: the stale response clears the wait bit; the (possibly
        // reallocated) entry may issue afterwards.
        lqWaitWrongPath_.write(idx, 0);
        return true;
    }
    LqEntry e = lq_.read(idx);
    if (!e.valid || e.state != LdState::Issued)
        panic("%s: respLd for idle entry %u", name().c_str(), idx);
    e.state = LdState::Done;
    e.data = value;
    lq_.write(idx, e);
    return false;
}

void
Lsq::wakeupBySBDeq(uint8_t sbIdx)
{
    wakeupBySBDeqM();
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        LqEntry e = lq_.read(i);
        if (e.valid && e.stallSrc == StallSrc::SbEntry &&
            e.stallIdx == sbIdx) {
            e.stallSrc = StallSrc::None;
            lq_.write(i, e);
        }
    }
}

void
Lsq::cacheEvict(Addr line)
{
    cacheEvictM();
    // TSO: a load that already read a value from this line, but is not
    // yet safely ordered (still in the LQ), read a possibly stale
    // value (paper cacheEvict).
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        LqEntry e = lq_.read(i);
        if (e.valid && !e.killed && e.addrValid &&
            (e.state == LdState::Done || e.state == LdState::Issued) &&
            lineAddr(e.pa) == line && !e.mmio) {
            e.killed = true;
            lq_.write(i, e);
            evictKills_.inc();
        }
    }
}

void
Lsq::setAtCommitSt(uint8_t idx)
{
    setAtCommitStM();
    SqEntry e = sq_.read(idx);
    if (!e.valid)
        panic("%s: setAtCommitSt on invalid entry %u", name().c_str(),
              idx);
    e.committed = true;
    sq_.write(idx, e);
}

bool
Lsq::olderStoreAddrUnknown(const LqEntry &e) const
{
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        const SqEntry &st = sq_.read(i);
        if (st.valid && st.memSeq < e.memSeq && !st.addrValid &&
            !st.fault)
            return true;
    }
    return false;
}

bool
Lsq::canDeqLd() const
{
    if (lqCount_.read() == 0)
        return false;
    const LqEntry &e = lq_.read(lqHead_.read());
    if (!e.valid)
        return false;
    if (e.mmio && !e.fault)
        return false; // handled at commit via dropLd
    if (e.fault || e.killed)
        return true;
    if (e.state != LdState::Done || olderStoreAddrUnknown(e))
        return false;
    if (tso_) {
        // TSO: an older atomic performs only at commit; a load must
        // stay in the LQ (killable by cacheEvict) until every older
        // atomic has left the SQ, or it could retire a value read
        // before the atomic's access (the lock-acquire hole).
        for (uint32_t n = 0; n < sqCount_.read(); n++) {
            uint32_t i = (sqHead_.read() + n) % sqSize_;
            const SqEntry &st = sq_.read(i);
            if (st.valid && st.memSeq < e.memSeq &&
                isa::Inst{st.op}.isAtomic())
                return false;
        }
    }
    return true;
}

Lsq::LqEntry
Lsq::deqLd()
{
    deqLdM();
    require(canDeqLd());
    uint32_t i = lqHead_.read();
    LqEntry e = lq_.read(i);
    // A killed load that is mid-flight keeps its wait-wrong-path slot
    // bit so a stale response cannot be taken by a new occupant.
    if (e.killed && e.state == LdState::Issued)
        lqWaitWrongPath_.write(i, 1);
    lq_.write(i, LqEntry{});
    lqHead_.write((i + 1) % lqSize_);
    lqCount_.write(lqCount_.read() - 1);
    return e;
}

Lsq::LqEntry
Lsq::dropLd()
{
    dropLdM();
    require(lqCount_.read() > 0);
    uint32_t i = lqHead_.read();
    LqEntry e = lq_.read(i);
    if (e.state == LdState::Issued)
        lqWaitWrongPath_.write(i, 1);
    lq_.write(i, LqEntry{});
    lqHead_.write((i + 1) % lqSize_);
    lqCount_.write(lqCount_.read() - 1);
    return e;
}

bool
Lsq::canIssueSt() const
{
    if (sqCount_.read() == 0)
        return false;
    const SqEntry &e = sq_.read(sqHead_.read());
    return e.valid && e.committed && e.addrValid && !e.mmio && !e.fault &&
           !e.cacheIssued && isa::Inst{e.op}.isStore();
}

void
Lsq::markStIssued(uint8_t idx)
{
    markStIssuedM();
    SqEntry e = sq_.read(idx);
    e.cacheIssued = true;
    sq_.write(idx, e);
}

int
Lsq::getStPrefetch() const
{
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        const SqEntry &e = sq_.read(i);
        if (e.valid && e.addrValid && !e.mmio && !e.fault &&
            !e.cacheIssued && !e.prefetched &&
            isa::Inst{e.op}.isStore())
            return static_cast<int>(i);
    }
    return -1;
}

void
Lsq::markStPrefetched(uint8_t idx)
{
    markStPrefetchedM();
    SqEntry e = sq_.read(idx);
    e.prefetched = true;
    sq_.write(idx, e);
}

bool
Lsq::canDeqStToSb(const StoreBuffer &sb) const
{
    if (sqCount_.read() == 0)
        return false;
    const SqEntry &e = sq_.read(sqHead_.read());
    return e.valid && e.committed && e.addrValid && !e.mmio && !e.fault &&
           isa::Inst{e.op}.isStore() && sb.canEnq(e.pa);
}

Lsq::SqEntry
Lsq::deqSt()
{
    deqStM();
    require(sqCount_.read() > 0);
    uint32_t i = sqHead_.read();
    SqEntry e = sq_.read(i);

    // Release loads that stalled on this SQ entry.
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t li = (lqHead_.read() + n) % lqSize_;
        LqEntry ld = lq_.read(li);
        if (ld.valid && ld.stallSrc == StallSrc::SqEntry &&
            ld.stallIdx == i) {
            ld.stallSrc = StallSrc::None;
            lq_.write(li, ld);
        }
    }

    sq_.write(i, SqEntry{});
    sqHead_.write((i + 1) % sqSize_);
    sqCount_.write(sqCount_.read() - 1);
    return e;
}

void
Lsq::wrongSpec(SpecMask deadMask)
{
    wrongSpecM();
    // Killed entries are the youngest suffix of each queue.
    uint32_t keep = 0;
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        LqEntry e = lq_.read(i);
        if (e.specMask & deadMask) {
            if (e.state == LdState::Issued)
                lqWaitWrongPath_.write(i, 1);
            lq_.write(i, LqEntry{});
        } else {
            keep = n + 1;
        }
    }
    lqTail_.write((lqHead_.read() + keep) % lqSize_);
    lqCount_.write(keep);

    keep = 0;
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        SqEntry e = sq_.read(i);
        if (e.specMask & deadMask) {
            sq_.write(i, SqEntry{});
        } else {
            keep = n + 1;
        }
    }
    sqTail_.write((sqHead_.read() + keep) % sqSize_);
    sqCount_.write(keep);
}

void
Lsq::correctSpec(SpecMask mask)
{
    correctSpecM();
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        LqEntry e = lq_.read(i);
        if (e.valid && (e.specMask & mask)) {
            e.specMask &= ~mask;
            lq_.write(i, e);
        }
    }
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        SqEntry e = sq_.read(i);
        if (e.valid && (e.specMask & mask)) {
            e.specMask &= ~mask;
            sq_.write(i, e);
        }
    }
}

void
Lsq::flushAll()
{
    flushM();
    for (uint32_t n = 0; n < lqCount_.read(); n++) {
        uint32_t i = (lqHead_.read() + n) % lqSize_;
        LqEntry e = lq_.read(i);
        if (e.valid && e.state == LdState::Issued)
            lqWaitWrongPath_.write(i, 1);
        lq_.write(i, LqEntry{});
    }
    lqHead_.write(0);
    lqTail_.write(0);
    lqCount_.write(0);

    // Committed stores must drain; everything younger dies. Committed
    // entries are a prefix of the SQ.
    uint32_t keep = 0;
    for (uint32_t n = 0; n < sqCount_.read(); n++) {
        uint32_t i = (sqHead_.read() + n) % sqSize_;
        SqEntry e = sq_.read(i);
        if (e.valid && e.committed) {
            if (n != keep)
                panic("%s: committed store not at SQ prefix",
                      name().c_str());
            keep = n + 1;
        } else {
            sq_.write(i, SqEntry{});
        }
    }
    sqTail_.write((sqHead_.read() + keep) % sqSize_);
    sqCount_.write(keep);
}

} // namespace riscy
