#include "lsq/store_buffer.hh"

namespace riscy {

using namespace cmd;

StoreBuffer::StoreBuffer(Kernel &k, const std::string &name,
                         uint32_t entries)
    : Module(k, name, Conflict::CF),
      enqM(method("enq")), issueM(method("issue")), deqM(method("deq")),
      searchM(method("search")),
      entries_(entries), arr_(k, name + ".arr", entries),
      used_(k, name + ".used", 0),
      coalesced_(stats().counter("coalesced")),
      issued_(stats().counter("issued"))
{
    selfCf(searchM);
    // Paper Section V-C: search < deq lets doIssueLd appear to execute
    // before doRespSt when both fire in one cycle.
    lt(searchM, deqM);
    lt(searchM, enqM);
    lt(issueM, deqM);
}

bool
StoreBuffer::canEnq(Addr addr) const
{
    return findLine(lineAddr(addr)) >= 0 || used_.read() < entries_;
}

int
StoreBuffer::findLine(Addr line) const
{
    for (uint32_t i = 0; i < entries_; i++) {
        if (arr_.read(i).valid && arr_.read(i).line == line)
            return static_cast<int>(i);
    }
    return -1;
}

int
StoreBuffer::findFree() const
{
    for (uint32_t i = 0; i < entries_; i++) {
        if (!arr_.read(i).valid)
            return static_cast<int>(i);
    }
    return -1;
}

int
StoreBuffer::findUnissued() const
{
    for (uint32_t i = 0; i < entries_; i++) {
        if (arr_.read(i).valid && !arr_.read(i).issued)
            return static_cast<int>(i);
    }
    return -1;
}

void
StoreBuffer::enq(Addr addr, uint64_t data, uint8_t bytes)
{
    enqM();
    Addr line = lineAddr(addr);
    unsigned off = lineOffset(addr);
    int i = findLine(line);
    if (i >= 0) {
        Entry e = arr_.read(i);
        e.data.write(off, data, bytes);
        e.byteMask |= ((1ull << bytes) - 1) << off;
        arr_.write(i, e);
        coalesced_.inc();
        return;
    }
    i = findFree();
    require(i >= 0);
    Entry e;
    e.valid = true;
    e.issued = false;
    e.line = line;
    e.data.write(off, data, bytes);
    e.byteMask = ((1ull << bytes) - 1) << off;
    arr_.write(i, e);
    used_.write(used_.read() + 1);
}

uint8_t
StoreBuffer::issue(Addr &line)
{
    issueM();
    int i = findUnissued();
    require(i >= 0);
    Entry e = arr_.read(i);
    e.issued = true;
    arr_.write(i, e);
    line = e.line;
    issued_.inc();
    return static_cast<uint8_t>(i);
}

StoreBuffer::DeqResult
StoreBuffer::deq(uint8_t idx)
{
    deqM();
    Entry e = arr_.read(idx);
    if (!e.valid)
        panic("%s: deq of invalid entry %u", name().c_str(), idx);
    arr_.write(idx, Entry{});
    used_.write(used_.read() - 1);
    return {e.line, e.data, e.byteMask};
}

StoreBuffer::SearchResult
StoreBuffer::search(Addr addr, uint8_t bytes) const
{
    searchM();
    SearchResult r;
    int i = findLine(lineAddr(addr));
    if (i < 0)
        return r;
    const Entry &e = arr_.read(i);
    unsigned off = lineOffset(addr);
    uint64_t want = ((1ull << bytes) - 1) << off;
    if ((e.byteMask & want) == want) {
        r.full = true;
        r.idx = static_cast<uint8_t>(i);
        r.data = e.data.read(off, bytes);
    } else if (e.byteMask & want) {
        r.partial = true;
        r.idx = static_cast<uint8_t>(i);
    }
    return r;
}

} // namespace riscy
