/**
 * @file
 * The load-store queue (paper Section V-B): split LQ and SQ keeping
 * in-flight loads and stores in program order, with the paper's
 * method set — enq, update, getIssueLd/issueLd, respLd,
 * wakeupBySBDeq, cacheEvict, setAtCommit, firstLd/firstSt,
 * deqLd/deqSt — plus wrongSpec/correctSpec like every speculative
 * module.
 *
 * Memory-dependency speculation: loads issue past older stores with
 * unknown addresses; update() of a store address searches younger
 * loads that already obtained a value from an overlapping location
 * and marks them to-be-killed (squashed when they reach commit).
 * Under TSO, cacheEvict() additionally kills completed loads whose
 * line leaves the L1 D cache (paper's TSO load-load ordering
 * enforcement); WMM needs neither that nor store-buffer kills.
 */
#pragma once

#include "core/cmd.hh"
#include "isa/sv39.hh"
#include "lsq/store_buffer.hh"
#include "ooo/uop.hh"

namespace riscy {

class Lsq : public cmd::Module
{
  public:
    Lsq(cmd::Kernel &k, const std::string &name, uint32_t lqSize,
        uint32_t sqSize, bool tso);

    /** Load-queue entry states. */
    enum class LdState : uint8_t { Idle, Issued, Done };
    /** What stalls a load retry (paper: "records the source"). */
    enum class StallSrc : uint8_t { None, SqEntry, SbEntry };

    struct LqEntry {
        bool valid = false;
        LdState state = LdState::Idle;
        isa::Op op = isa::Op::ILLEGAL;
        uint8_t bytes = 0;
        RobIdx rob = 0;
        PhysReg pd = 0;
        bool hasPd = false;
        uint32_t memSeq = 0;
        Addr va = 0, pa = 0;
        bool addrValid = false;
        bool mmio = false;
        bool fault = false;
        uint8_t cause = 0;
        bool killed = false;
        StallSrc stallSrc = StallSrc::None;
        uint8_t stallIdx = 0;
        uint64_t data = 0;
        SpecMask specMask = 0;
    };

    struct SqEntry {
        bool valid = false;
        isa::Op op = isa::Op::ILLEGAL;
        uint8_t bytes = 0;
        RobIdx rob = 0;
        PhysReg pd = 0; ///< SC/AMO destination
        bool hasPd = false;
        uint32_t memSeq = 0;
        Addr va = 0, pa = 0;
        bool addrValid = false;
        bool mmio = false;
        bool fault = false;
        uint8_t cause = 0;
        uint64_t data = 0;
        bool dataValid = false;
        bool committed = false;
        bool cacheIssued = false;  ///< TSO: request sent to the L1 D
        bool prefetched = false;   ///< store-prefetch hint sent
        SpecMask specMask = 0;
    };

    /** Outcome of issueLd (paper Fig. 10). */
    enum class IssueResult : uint8_t { ToCache, Forward, Stall };

    // ---- probes
    bool canEnqLd() const { return lqCount_.read() < lqSize_; }
    bool canEnqSt() const { return sqCount_.read() < sqSize_; }
    bool lqEmpty() const { return lqCount_.read() == 0; }
    bool sqEmpty() const { return sqCount_.read() == 0; }
    uint32_t lqCount() const { return lqCount_.read(); }
    uint32_t sqCount() const { return sqCount_.read(); }
    const LqEntry &lqEntry(uint8_t i) const { return lq_.read(i); }
    const SqEntry &sqEntry(uint8_t i) const { return sq_.read(i); }
    uint8_t lqHeadIdx() const { return static_cast<uint8_t>(lqHead_.read()); }
    uint8_t sqHeadIdx() const { return static_cast<uint8_t>(sqHead_.read()); }
    const LqEntry &firstLd() const { return lq_.read(lqHead_.read()); }
    const SqEntry &firstSt() const { return sq_.read(sqHead_.read()); }
    /** Index of a ready-to-issue load, or -1 (paper getIssueLd). */
    int getIssueLd() const;
    /** Can the oldest load retire from the LQ? (see deqLd) */
    bool canDeqLd() const;
    /** An SQ store ready to go to the cache (TSO; paper issueSt). */
    bool canIssueSt() const;
    /** An SQ store ready to move to the SB (WMM). */
    bool canDeqStToSb(const StoreBuffer &sb) const;
    /** An SQ entry eligible for a store-prefetch hint, or -1. The
     *  paper notes the SQ "can issue as many store-prefetch requests
     *  as it wants" but left the feature unimplemented. */
    int getStPrefetch() const;

    // ---- interface methods (paper Section V-B)
    /** Allocate an LQ slot at rename; @return the slot index. */
    uint8_t enqLd(isa::Op op, uint8_t bytes, RobIdx rob, PhysReg pd,
                  bool hasPd, SpecMask mask);
    /** Allocate an SQ slot at rename. */
    uint8_t enqSt(isa::Op op, uint8_t bytes, RobIdx rob, PhysReg pd,
                  bool hasPd, SpecMask mask);
    /** Translation (and store data) arrive (paper update). */
    void updateLd(uint8_t idx, Addr va, Addr pa, bool fault, uint8_t cause,
                  bool mmio);
    void updateSt(uint8_t idx, Addr va, Addr pa, bool fault, uint8_t cause,
                  bool mmio, uint64_t data);
    /** Try to issue the load at @p idx (paper issueLd). */
    IssueResult issueLd(uint8_t idx, const StoreBuffer::SearchResult &sb,
                        bool useSb, uint64_t &fwdValue);
    /** Memory (or forward-queue) response; @return true = wrong path. */
    bool respLd(uint8_t idx, uint64_t value);
    /** A store-buffer entry drained (WMM): clear matching stalls. */
    void wakeupBySBDeq(uint8_t sbIdx);
    /** A cache line left the L1 D (TSO): kill stale completed loads. */
    void cacheEvict(Addr line);
    /** The ROB head reached this store: it may access memory now. */
    void setAtCommitSt(uint8_t idx);
    /** TSO: the head store's cache request has been sent. */
    void markStIssued(uint8_t idx);
    /** A store-prefetch hint was sent for this entry. */
    void markStPrefetched(uint8_t idx);
    /** Retire the oldest load; returns it (paper deqLd). */
    LqEntry deqLd();
    /** Retire the oldest store (after cache write / SB insert). */
    SqEntry deqSt();
    /** Free the oldest load without retiring side effects (MMIO/LR). */
    LqEntry dropLd();
    void wrongSpec(SpecMask deadMask);
    void correctSpec(SpecMask mask);
    /** Commit-time flush: drop everything uncommitted. */
    void flushAll();

    cmd::Method &enqLdM, &enqStM, &updateLdM, &updateStM, &issueLdM,
        &respLdM, &wakeupBySBDeqM, &cacheEvictM, &setAtCommitStM,
        &markStIssuedM, &markStPrefetchedM, &deqLdM, &deqStM, &dropLdM,
        &wrongSpecM,
        &correctSpecM, &flushM;

  private:
    static bool
    overlap(Addr aPa, uint8_t aBytes, Addr bPa, uint8_t bBytes)
    {
        return aPa < bPa + bBytes && bPa < aPa + aBytes;
    }
    static bool
    covers(Addr stPa, uint8_t stBytes, Addr ldPa, uint8_t ldBytes)
    {
        return stPa <= ldPa && ldPa + ldBytes <= stPa + stBytes;
    }
    /** Is there an older store with unknown address or undrained
     *  overlapping data hazard for load @p e? Used by deqLd. */
    bool olderStoreAddrUnknown(const LqEntry &e) const;

    uint32_t lqSize_, sqSize_;
    bool tso_;
    cmd::RegArray<LqEntry> lq_;
    cmd::RegArray<SqEntry> sq_;
    /// paper: "waiting for wrong path response" bit, kept per slot so
    /// the slot can be reallocated but not issued until cleared
    cmd::RegArray<uint8_t> lqWaitWrongPath_;
    cmd::Reg<uint32_t> lqHead_, lqTail_, lqCount_;
    cmd::Reg<uint32_t> sqHead_, sqTail_, sqCount_;
    cmd::Reg<uint32_t> memSeq_;
    cmd::Stat &ldKills_, &evictKills_, &forwards_, &stalls_;
};

} // namespace riscy
