#include "synth/area_model.hh"

#include <cmath>

namespace riscy::synth {

namespace {

// Rough per-bit NAND2 equivalents for standard structures.
constexpr double kFlopBitGates = 8.0;    // DFF + local mux/enable
constexpr double kCamBitGates = 14.0;    // match + storage
constexpr double kAluGates = 9000.0;     // 64-bit ALU + shifter
constexpr double kMulDivGates = 42000.0; // 64-bit multiplier + divider

} // namespace

Breakdown
estimateBreakdown(const CoreConfig &cfg)
{
    Breakdown b;

    // Front end: the paper notes gate counts are "significantly
    // affected by the size of the branch predictors" — the tournament
    // tables dominate (flop-based, not SRAM, in RiscyOO).
    double tournamentBits = 1024.0 * 10 + 1024 * 3 + 4096 * 2 + 4096 * 2;
    double btbBits = cfg.btbEntries * (1 + 62 + 62);
    double rasBits = cfg.rasEntries * 64;
    b.frontend = (tournamentBits + btbBits + rasBits) * kFlopBitGates +
                 cfg.width * 30000.0; // fetch group/align/decode logic

    // Rename: map tables + per-tag checkpoints + free list.
    double physW = std::ceil(std::log2(cfg.numPhys()));
    b.rename = (32 * physW * (1 + cfg.numSpecTags) +
                cfg.numPhys() * physW) *
                   kFlopBitGates +
               cfg.width * 12000.0;

    // ROB: wide entries (pc, dest/stale tags, LSQ index, status,
    // exception info, speculation mask) with multi-ported access.
    double robEntryBits = 150 + 2.0 * cfg.numSpecTags;
    b.rob = cfg.robSize * robEntryBits * kFlopBitGates *
            (1.0 + 0.15 * cfg.width);

    // Issue queues: CAM wakeup across all pipelines.
    uint32_t pipes = cfg.aluPipes + 2;
    double iqEntryBits = 2 * physW + 90 + cfg.numSpecTags;
    b.issue = pipes * cfg.iqSize *
              (2 * physW * kCamBitGates + iqEntryBits * kFlopBitGates);

    // PRF + bypass network + ALUs.
    uint32_t readPorts = 2 * (cfg.aluPipes + 2);
    b.regfile = cfg.numPhys() * 64 * kFlopBitGates *
                    (0.6 + 0.08 * readPorts) +
                cfg.aluPipes * kAluGates + kMulDivGates +
                cfg.aluPipes * 2 * 6000.0; // bypass muxes

    // LSQ: address CAMs for forwarding/kill searches + SB.
    b.lsu = (cfg.lqSize + cfg.sqSize) *
                (48 * kCamBitGates + 130 * kFlopBitGates) +
            cfg.sbSize * (512 + 64) * kFlopBitGates;

    // Cache/TLB control logic (SRAM arrays excluded like the paper).
    double tlbLogic = (cfg.itlb.entries + cfg.dtlb.entries) *
                      (27 + 44) * kCamBitGates;
    if (cfg.dtlb.hitUnderMiss)
        tlbLogic += cfg.dtlb.maxMisses * 4000.0;
    if (cfg.l2tlb.walkCache)
        tlbLogic += 2 * cfg.l2tlb.walkCacheEntries * (30 + 44) *
                    kCamBitGates;
    b.memIf = tlbLogic + 90000.0; // MSHRs, protocol FSMs, walker

    return b;
}

SynthResult
estimate(const CoreConfig &cfg)
{
    Breakdown b = estimateBreakdown(cfg);
    SynthResult r;
    // Calibration: RiscyOO-T+ = 1.78 M NAND2 (paper Fig. 21).
    static const double kCal = [] {
        CoreConfig tplus;
        tplus.dtlb = {32, 4, true};
        tplus.l2tlb = {2048, 4, 2, true, 24};
        return 1.78e6 / estimateBreakdown(tplus).total();
    }();
    r.nand2Mgates = b.total() * kCal / 1e6;

    // Frequency: critical paths grow with the wakeup/select loop
    // (IQ size), the rename width, and the LSQ search depth.
    // Calibrated to 1.1 GHz for RiscyOO-T+ / 1.0 GHz for T+R+.
    double psBase = 640.0;
    double psIq = 5.2 * cfg.iqSize;
    double psRob = 1.45 * cfg.robSize;
    double psWidth = 24.0 * cfg.width;
    double psLsq = 2.0 * (cfg.lqSize + cfg.sqSize);
    double psTags = 2.8 * cfg.numSpecTags;
    double periodPs = psBase + psIq + psRob + psWidth + psLsq + psTags;
    r.maxGhz = 1000.0 / periodPs;
    return r;
}

} // namespace riscy::synth
