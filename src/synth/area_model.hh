/**
 * @file
 * Analytical ASIC synthesis model reproducing the shape of the
 * paper's Fig. 21 (Synopsys DC, 32 nm SOI, CACTI SRAM black boxes):
 * a NAND2-equivalent *logic-only* gate count (SRAM arrays excluded,
 * as the paper excludes them) and a maximum-frequency estimate from
 * the configuration-dependent critical paths.
 *
 * The model is calibrated so the RiscyOO-T+ configuration lands at
 * the paper's reported 1.78 M gates / 1.1 GHz; what it *predicts* is
 * the relative cost of configuration deltas (e.g. T+R+ adds an
 * 80-entry ROB and more speculation tags for ~6% more logic and a
 * slightly slower clock). See EXPERIMENTS.md for paper-vs-model.
 */
#pragma once

#include "proc/config.hh"

namespace riscy::synth {

struct SynthResult {
    double nand2Mgates = 0; ///< logic-only NAND2 equivalents, millions
    double maxGhz = 0;      ///< post-synthesis max frequency estimate
};

struct Breakdown {
    double frontend = 0; ///< predictors + fetch (logic share)
    double rename = 0;   ///< rename table, free list, spec manager
    double rob = 0;
    double issue = 0;    ///< IQs + wakeup/select
    double regfile = 0;  ///< PRF ports + bypass
    double lsu = 0;      ///< LSQ + SB CAMs
    double memIf = 0;    ///< cache control (SRAM excluded), TLB logic
    double total() const
    {
        return frontend + rename + rob + issue + regfile + lsu + memIf;
    }
};

/** Per-module NAND2-equivalent logic estimate for a core config. */
Breakdown estimateBreakdown(const CoreConfig &cfg);

/** Headline numbers for one core (pipeline + L1 control logic). */
SynthResult estimate(const CoreConfig &cfg);

} // namespace riscy::synth
