/**
 * @file
 * Randomized litmus stress: a seeded generator of small random litmus
 * programs, each cosimulated against the reference-model outcome
 * enumeration across jittered runs (diy/litmus7-style, but with the
 * oracle computed instead of hand-listed). A forbidden outcome is
 * shrunk to a minimal failing program by greedy delta reduction and
 * written out as a full repro bundle.
 */
#pragma once

#include <random>

#include "litmus/runner.hh"

namespace riscy::litmus {

struct FuzzConfig {
    /** Base run knobs; model/sched/seed inside are honored. */
    RunConfig run;
    uint64_t seed = 20260808;   ///< master stream seed
    uint32_t programs = 16;     ///< generated programs
    uint32_t runsPerProgram = 6;///< jittered seeds per program
    uint32_t shrinkRuns = 4;    ///< seeds per shrink-predicate probe
    /** Repro bundles land in <bundleDir>/<prog-name>/; empty = skip. */
    std::string bundleDir = "litmus_repro";
};

struct FuzzFailure {
    LitmusProgram original;
    LitmusProgram shrunk;
    Outcome outcome = 0;     ///< a forbidden outcome of the shrunk program
    uint64_t failSeed = 0;   ///< run seed reproducing it
    std::string bundleDir;   ///< written bundle ("" if disabled)
};

struct FuzzResult {
    uint32_t programs = 0;
    uint64_t runs = 0;
    uint32_t hangs = 0;
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty() && hangs == 0; }
};

/**
 * Draw one random small litmus program from @p rng: 2 harts, 2–4
 * instructions each over 2 locations, ~40/40/10/10 St/Ld/Fence/AMO
 * mix, sometimes observing final memory. Always valid().
 */
LitmusProgram generateProgram(std::mt19937_64 &rng);

/**
 * Greedy delta reduction: repeatedly drop a hart, an instruction, or
 * a final-memory observation while @p stillFails keeps returning true
 * on the candidate. Pure function of its arguments (the predicate
 * carries all execution context), so it unit-tests without a System.
 */
LitmusProgram
shrinkProgram(const LitmusProgram &p,
              const std::function<bool(const LitmusProgram &)> &stillFails);

/** Run the whole campaign. Deterministic for a fixed config. */
FuzzResult fuzz(const FuzzConfig &cfg);

} // namespace riscy::litmus
