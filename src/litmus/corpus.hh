/**
 * @file
 * The classic litmus corpus: SB, MP, LB, CoRR, S, R, 2+2W, WRC, IRIW
 * and FENCE/AMO-strengthened variants, as LitmusProgram structs.
 *
 * Allowed-outcome sets are NOT hand-coded here — the runner always
 * checks observed outcomes against enumerateOutcomes() so the corpus
 * cannot drift from the model. What each entry does carry is a
 * per-model *coverage* obligation: weak outcomes (model-allowed, but
 * only reachable through buffering/reordering) that the perturbation
 * shaker must observe at least once across a seed matrix, proving the
 * jitter actually visits the interesting schedules instead of
 * replaying one fixed interleaving.
 */
#pragma once

#include "litmus/model.hh"

namespace riscy::litmus {

struct CorpusEntry {
    LitmusProgram prog;
    /** Weak outcomes the shaker must reach under TSO (each is
     *  enumerator-allowed; reaching it requires real store buffering
     *  or speculation, not just a lucky interleaving). */
    std::vector<Outcome> mustObserveTso;
    /** Weak outcomes the shaker must reach under WMM — including the
     *  TSO-forbidden ones that separate the two models (MP reorder,
     *  IRIW non-atomicity, ...). */
    std::vector<Outcome> mustObserveWmm;
};

/** The full corpus (stable order, stable names). */
const std::vector<CorpusEntry> &corpus();

/** Lookup by name; faults (ApiMisuse) on unknown name. */
const CorpusEntry &corpusEntry(const std::string &name);

} // namespace riscy::litmus
