#include "litmus/model.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_set>

#include "core/fault.hh"

namespace riscy::litmus {

const char *
toString(MemModel m)
{
    return m == MemModel::Tso ? "TSO" : "WMM";
}

/** Location display names: litmus literature convention. */
static const char *kLocName[LitmusProgram::kMaxLocs] = {"x", "y", "z",
                                                        "w"};

uint32_t
LitmusProgram::numLoads(uint32_t h) const
{
    uint32_t n = 0;
    for (const auto &i : harts[h])
        if (i.op == LOp::Ld)
            n++;
    return n;
}

uint32_t
LitmusProgram::slotBase(uint32_t h) const
{
    uint32_t base = 0;
    for (uint32_t g = 0; g < h; g++)
        base += numLoads(g);
    return base;
}

uint32_t
LitmusProgram::numSlots() const
{
    return slotBase(numHarts()) + uint32_t(finalObs.size());
}

uint32_t
LitmusProgram::numLocs() const
{
    uint32_t n = 0;
    for (const auto &hp : harts)
        for (const auto &i : hp)
            n = std::max(n, uint32_t(i.loc) + 1);
    for (uint8_t l : finalObs)
        n = std::max(n, uint32_t(l) + 1);
    return n;
}

static std::string
describeInst(const LitmusInst &i)
{
    std::string s;
    switch (i.op) {
    case LOp::Ld:
        s = std::string("Ld ") + kLocName[i.loc];
        break;
    case LOp::St:
        s = std::string("St ") + kLocName[i.loc] + "=" +
            std::to_string(i.val);
        break;
    case LOp::Fence:
        s = "Fence";
        break;
    case LOp::AmoSwap:
        s = std::string("AmoSwap ") + kLocName[i.loc] + "<-" +
            std::to_string(i.val);
        break;
    case LOp::AmoAdd:
        s = std::string("AmoAdd ") + kLocName[i.loc] + "+=" +
            std::to_string(i.val);
        break;
    }
    return s;
}

std::string
LitmusProgram::describe() const
{
    std::string s;
    for (uint32_t h = 0; h < numHarts(); h++) {
        if (h)
            s += " | ";
        s += "P" + std::to_string(h) + ":";
        for (const auto &i : harts[h])
            s += " " + describeInst(i) + ";";
    }
    if (!finalObs.empty()) {
        s += " final{";
        for (size_t k = 0; k < finalObs.size(); k++)
            s += std::string(k ? "," : "") + kLocName[finalObs[k]];
        s += "}";
    }
    return s;
}

bool
LitmusProgram::valid(std::string *why) const
{
    auto fail = [&](const std::string &m) {
        if (why)
            *why = m;
        return false;
    };
    if (harts.empty() || harts.size() > 4)
        return fail("hart count must be 1..4");
    for (uint32_t h = 0; h < numHarts(); h++) {
        if (harts[h].empty())
            return fail("empty hart program");
        if (numLoads(h) > 4)
            return fail("more than 4 loads in one hart "
                        "(s-register lowering budget)");
        for (const auto &i : harts[h]) {
            if (i.loc >= kMaxLocs)
                return fail("location out of range");
            if (i.val > 15)
                return fail("value exceeds 4-bit outcome packing");
            if ((i.op == LOp::St || i.op == LOp::AmoSwap ||
                 i.op == LOp::AmoAdd) &&
                i.val == 0)
                return fail("store/AMO value 0 is indistinguishable "
                            "from the initial memory value");
        }
    }
    for (uint8_t l : finalObs)
        if (l >= kMaxLocs)
            return fail("finalObs location out of range");
    if (numSlots() == 0)
        return fail("no observed slots");
    if (numSlots() > kMaxSlots)
        return fail("more than 15 observed slots");
    return true;
}

std::string
formatOutcome(const LitmusProgram &p, Outcome o)
{
    std::string s;
    uint32_t slot = 0;
    for (uint32_t h = 0; h < p.numHarts(); h++) {
        uint32_t j = 0;
        for (const auto &i : p.harts[h]) {
            if (i.op != LOp::Ld)
                continue;
            if (!s.empty())
                s += " ";
            s += "P" + std::to_string(h) + ".r" + std::to_string(j++) +
                 "=" + std::to_string(slotValue(o, slot++));
        }
    }
    for (uint8_t l : p.finalObs) {
        if (!s.empty())
            s += " ";
        s += std::string("[") + kLocName[l] +
             "]=" + std::to_string(slotValue(o, slot++));
    }
    return s;
}

Outcome
packOutcome(const std::vector<uint32_t> &slots)
{
    Outcome o = 0;
    for (size_t i = 0; i < slots.size(); i++)
        o |= Outcome(slots[i] & 0xf) << (4 * i);
    return o;
}

namespace {

/**
 * The abstract machine state explored by the DFS. Kept deliberately
 * flat so encoding for memoization is a straight byte dump.
 */
struct MState {
    std::vector<uint8_t> pc; ///< next instruction index, per hart
    Outcome partial = 0;     ///< load slots observed so far
    std::array<uint8_t, LitmusProgram::kMaxLocs> mem{};
    /** Store buffer, oldest first. TSO drains head-only (FIFO); WMM
     *  drains any oldest-per-address entry. */
    std::vector<std::vector<std::pair<uint8_t, uint8_t>>> sb;
    /** WMM invalidation buffers: per hart, per location, the stale
     *  values a load may still return, insertion order = coherence
     *  order (oldest first). Unused under TSO. */
    std::vector<std::array<std::vector<uint8_t>, LitmusProgram::kMaxLocs>>
        ib;

    std::string encode() const
    {
        std::string k;
        k.reserve(64);
        for (uint8_t p : pc)
            k.push_back(char(p));
        for (int i = 0; i < 8; i++)
            k.push_back(char(partial >> (8 * i)));
        for (uint8_t m : mem)
            k.push_back(char(m));
        for (const auto &b : sb) {
            k.push_back(char(b.size()));
            for (auto [l, v] : b) {
                k.push_back(char(l));
                k.push_back(char(v));
            }
        }
        for (const auto &hb : ib)
            for (const auto &locb : hb) {
                k.push_back(char(locb.size()));
                for (uint8_t v : locb)
                    k.push_back(char(v));
            }
        return k;
    }
};

class Enumerator
{
  public:
    Enumerator(const LitmusProgram &p, MemModel m) : prog_(p), model_(m)
    {
        // Slot index of each Ld, addressable by (hart, pc).
        slotOf_.resize(p.numHarts());
        for (uint32_t h = 0; h < p.numHarts(); h++) {
            uint32_t s = p.slotBase(h);
            slotOf_[h].assign(p.harts[h].size(), ~0u);
            for (uint32_t i = 0; i < p.harts[h].size(); i++)
                if (p.harts[h][i].op == LOp::Ld)
                    slotOf_[h][i] = s++;
        }
    }

    std::set<Outcome> run()
    {
        MState s;
        s.pc.assign(prog_.numHarts(), 0);
        s.sb.resize(prog_.numHarts());
        if (model_ == MemModel::Wmm)
            s.ib.resize(prog_.numHarts());
        explore(s);
        return std::move(results_);
    }

  private:
    /** Generous ceiling: corpus/fuzz programs reach a few thousand
     *  states; a runaway would indicate an enumerator bug. */
    static constexpr size_t kStateCap = 4u << 20;

    void explore(MState s)
    {
        auto [it, fresh] = memo_.insert(s.encode());
        (void)it;
        if (!fresh)
            return;
        if (memo_.size() > kStateCap)
            cmd::kfault(cmd::FaultKind::ApiMisuse, "litmus",
                        "outcome enumeration exceeded %zu states for "
                        "'%s' — program too large for the model DFS",
                        kStateCap, prog_.name.c_str());

        bool terminal = true;
        for (uint32_t h = 0; h < prog_.numHarts(); h++)
            if (s.pc[h] < prog_.harts[h].size() || !s.sb[h].empty())
                terminal = false;
        if (terminal) {
            Outcome o = s.partial;
            uint32_t slot = prog_.slotBase(prog_.numHarts());
            for (uint8_t l : prog_.finalObs)
                o |= Outcome(s.mem[l] & 0xf) << (4 * slot++);
            results_.insert(o);
            return;
        }

        for (uint32_t h = 0; h < prog_.numHarts(); h++) {
            if (s.pc[h] < prog_.harts[h].size())
                stepInst(s, h);
            stepDrain(s, h);
        }
    }

    /** Execute hart @p h's next instruction (I2E: in order, one at a
     *  time; all weakness comes from the buffers). */
    void stepInst(const MState &s, uint32_t h)
    {
        const LitmusInst &i = prog_.harts[h][s.pc[h]];
        switch (i.op) {
        case LOp::Ld: {
            uint32_t slot = slotOf_[h][s.pc[h]];
            // Youngest own store-buffer entry wins in both models.
            const auto &b = s.sb[h];
            auto own = std::find_if(
                b.rbegin(), b.rend(),
                [&](const auto &e) { return e.first == i.loc; });
            if (own != b.rend()) {
                next(s, h, [&](MState &n) {
                    n.partial |= Outcome(own->second & 0xf)
                                 << (4 * slot);
                });
                return;
            }
            // Monolithic memory. Under WMM this is also a reconcile
            // point for the address: every ib value is staler.
            next(s, h, [&](MState &n) {
                n.partial |= Outcome(n.mem[i.loc] & 0xf) << (4 * slot);
                if (model_ == MemModel::Wmm)
                    n.ib[h][i.loc].clear();
            });
            // WMM only: any stale value still in the invalidation
            // buffer. Reading entry k discards the entries older than
            // it (a later load may not travel backwards in coherence
            // order), but keeps k itself and everything younger.
            if (model_ == MemModel::Wmm) {
                const auto &stale = s.ib[h][i.loc];
                for (size_t k = 0; k < stale.size(); k++)
                    next(s, h, [&](MState &n) {
                        n.partial |= Outcome(stale[k] & 0xf)
                                     << (4 * slot);
                        auto &v = n.ib[h][i.loc];
                        v.erase(v.begin(), v.begin() + k);
                    });
            }
            return;
        }
        case LOp::St:
            next(s, h, [&](MState &n) {
                n.sb[h].emplace_back(i.loc, i.val);
                // Own store supersedes every stale value we could
                // still have read for this address.
                if (model_ == MemModel::Wmm)
                    n.ib[h][i.loc].clear();
            });
            return;
        case LOp::Fence:
            // FENCE = Commit (sb empty) + Reconcile (drop stale
            // values). Blocks until drains make the sb empty.
            if (!s.sb[h].empty())
                return;
            next(s, h, [&](MState &n) {
                if (model_ == MemModel::Wmm)
                    for (auto &v : n.ib[h])
                        v.clear();
            });
            return;
        case LOp::AmoSwap:
        case LOp::AmoAdd:
            // Atomics act directly on monolithic memory and require
            // the local store buffer drained first — mirroring the
            // implementation (commit blocks until StoreBuffer empty,
            // then RMWs the line in M state). Note: under WMM an AMO
            // does NOT reconcile the local ib; an acquire still needs
            // a following FENCE.
            if (!s.sb[h].empty())
                return;
            next(s, h, [&](MState &n) {
                uint8_t old = n.mem[i.loc];
                n.mem[i.loc] =
                    (i.op == LOp::AmoSwap ? i.val : uint8_t(old + i.val)) &
                    0xf;
                if (model_ == MemModel::Wmm) {
                    n.ib[h][i.loc].clear(); // the RMW read is from memory
                    insertStale(n, h, i.loc, old);
                }
            });
            return;
        }
    }

    /** Background store-buffer drain transitions for hart @p h. */
    void stepDrain(const MState &s, uint32_t h)
    {
        const auto &b = s.sb[h];
        for (size_t k = 0; k < b.size(); k++) {
            // TSO: strict FIFO, only the head may drain. WMM: any
            // entry that is the oldest for its address.
            if (model_ == MemModel::Tso && k != 0)
                break;
            if (model_ == MemModel::Wmm) {
                bool oldest = true;
                for (size_t j = 0; j < k; j++)
                    if (b[j].first == b[k].first)
                        oldest = false;
                if (!oldest)
                    continue;
            }
            MState n = s;
            auto [loc, val] = n.sb[h][k];
            n.sb[h].erase(n.sb[h].begin() + k);
            uint8_t old = n.mem[loc];
            n.mem[loc] = val;
            if (model_ == MemModel::Wmm)
                insertStale(n, h, loc, old);
            explore(std::move(n));
        }
    }

    /** Memory at @p loc was overwritten, displacing @p old: every
     *  *other* hart may still read it stale — unless that hart has its
     *  own store to the address buffered, in which case its loads are
     *  already bound to a younger value. */
    void insertStale(MState &n, uint32_t h, uint8_t loc, uint8_t old)
    {
        for (uint32_t g = 0; g < prog_.numHarts(); g++) {
            if (g == h)
                continue;
            bool ownStore = std::any_of(
                n.sb[g].begin(), n.sb[g].end(),
                [&](const auto &e) { return e.first == loc; });
            if (!ownStore)
                n.ib[g][loc].push_back(old);
        }
    }

    /** Copy @p s, apply @p mut, advance hart @p h's pc, recurse. */
    template <class Mut> void next(const MState &s, uint32_t h, Mut mut)
    {
        MState n = s;
        mut(n);
        n.pc[h]++;
        explore(std::move(n));
    }

    const LitmusProgram &prog_;
    MemModel model_;
    std::vector<std::vector<uint32_t>> slotOf_;
    std::unordered_set<std::string> memo_;
    std::set<Outcome> results_;
};

} // namespace

std::set<Outcome>
enumerateOutcomes(const LitmusProgram &p, MemModel m)
{
    std::string why;
    if (!p.valid(&why))
        cmd::kfault(cmd::FaultKind::ApiMisuse, "litmus",
                    "invalid litmus program '%s': %s", p.name.c_str(),
                    why.c_str());
    return Enumerator(p, m).run();
}

} // namespace riscy::litmus
