#include "litmus/runner.hh"

#include <filesystem>
#include <fstream>
#include <random>

#include "asmkit/assembler.hh"
#include "core/fault.hh"
#include "core/harden.hh"
#include "isa/inst.hh"

namespace riscy::litmus {

using namespace asmkit;

namespace {

/** Shared data page: far from code, one cache line per location. */
constexpr Addr kDataOff = 0x40000;
constexpr uint32_t kLocStride = 256;
/** AMO done-counter (own line, within the 12-bit imm of the base). */
constexpr int32_t kDoneOff = 1024;
/**
 * Start-rendezvous deadline (absolute kernel cycle). Without a
 * rendezvous the harts never actually race: every hart but 0 takes a
 * dispatch-branch mispredict plus a cold icache refetch of its own
 * body (~300 cycles on the quad config), so hart bodies execute back
 * to back and the sweep only ever sees sequential interleavings. An
 * AMO counter barrier does not fix this either — the exit reload of
 * the counter line ping-pongs through the hierarchy and the measured
 * exit spread was still ~150-270 cycles. Spinning on the global cycle
 * CSR (csrr cycle is synchronous across harts) until a common
 * absolute deadline costs zero memory traffic, so every hart leaves
 * the rendezvous within one spin iteration of the others. The value
 * must exceed the worst-case cold start (dispatch mispredict + icache
 * refetch + up to kMaxLocs serialized prewarm DRAM misses, with DRAM
 * contention from all four harts).
 */
constexpr int64_t kStartDeadline = 2000;

const char *
schedName(cmd::SchedulerKind s)
{
    switch (s) {
    case cmd::SchedulerKind::Exhaustive:
        return "Exhaustive";
    case cmd::SchedulerKind::EventDriven:
        return "EventDriven";
    case cmd::SchedulerKind::Parallel:
        return "Parallel";
    case cmd::SchedulerKind::Compiled:
        return "Compiled";
    }
    return "?";
}

/** Emit "exit with code in a0" through the host device, then park. */
void
emitExit(Assembler &a)
{
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

/** OR the low 4 bits of @p src into a0 at global slot @p slot. */
void
emitPackSlot(Assembler &a, int src, uint32_t slot)
{
    a.andi(t2, src, 0xf);
    if (slot)
        a.slli(t2, t2, 4 * slot);
    a.or_(a0, a0, t2);
}

void
emitHart(Assembler &a, const LitmusProgram &p, uint32_t h, uint32_t skew,
         uint32_t warmMask)
{
    a.li(s0, kDramBase + kDataOff);
    a.li(a0, 0);
    // Seeded cache prewarm: pull a per-seed subset of the data lines
    // into this hart's L1 (shared, initial values — the reads are
    // discarded and happen before the barrier, so they cannot affect
    // the checked outcome under either model). Warm-vs-cold
    // combinations put structurally different races on the table: a
    // warm younger-load line next to a cold older-load line is what
    // opens the load-load reorder window that TSO's eviction kill
    // exists to close.
    for (uint8_t loc = 0; loc < p.numLocs(); loc++)
        if (warmMask & (1u << loc))
            a.ld(t5, int32_t(loc) * kLocStride, s0);
    // Start rendezvous: spin on the global cycle CSR until the common
    // absolute deadline (see kStartDeadline). This absorbs the
    // dispatch mispredict and the cold-icache refetch of the body
    // without generating any memory traffic of its own.
    a.li(t4, kStartDeadline);
    {
        auto barr = a.newLabel();
        a.bind(barr);
        a.csrr(t5, isa::kCsrCycle);
        a.blt(t5, t4, barr);
    }
    // Seeded start skew as a straight-line NOP slide (skew NOPs =
    // skew/width cycles). A branchy delay loop here would be a
    // disaster: its trip-count branch resolves at execute, so the
    // per-iteration cost depends on each hart's predictor state and
    // the harts drift hundreds of cycles apart again (measured: 3.7
    // vs 7.2 cycles/iteration on two harts of the same run). NOPs
    // retire at the machine width on every hart identically. The
    // skew decorrelates the harts' arrival at the shared lines so
    // different seeds visit different interleavings even before any
    // message jitter lands; wrong-path fetch during the rendezvous
    // spin keeps the slide and the body warm in the icache.
    for (uint32_t i = 0; i < skew; i++)
        a.addi(zero, zero, 0);
    uint32_t ldIdx = 0;
    for (const auto &i : p.harts[h]) {
        int32_t off = int32_t(i.loc) * kLocStride;
        switch (i.op) {
        case LOp::Ld:
            // Observed loads land in callee-saved regs s2..s5 (valid()
            // caps loads per hart at 4) and are packed after the body,
            // so the packing ALU ops cannot reorder the memory ops.
            a.ld(s2 + int(ldIdx), off, s0);
            ldIdx++;
            break;
        case LOp::St:
            a.li(t2, i.val);
            a.sd(t2, off, s0);
            break;
        case LOp::Fence:
            a.fence();
            break;
        case LOp::AmoSwap:
        case LOp::AmoAdd:
            a.li(t2, i.val);
            a.addi(t3, s0, off);
            if (i.op == LOp::AmoSwap)
                a.amoswap_d(zero, t2, t3);
            else
                a.amoadd_d(zero, t2, t3);
            break;
        }
    }
    for (uint32_t j = 0; j < ldIdx; j++)
        emitPackSlot(a, s2 + int(j), p.slotBase(h) + j);
    // Publish everything and bump the done counter. The fence and the
    // AMO come *after* every observed access, so they do not
    // strengthen the program under test — they only guarantee that
    // once the counter reads numHarts, all stores live in the
    // coherent domain and final memory is well-defined.
    a.fence();
    a.li(t2, 1);
    a.addi(t3, s0, kDoneOff);
    a.amoadd_d(zero, t2, t3);
    if (h == 0 && !p.finalObs.empty()) {
        a.li(t4, int64_t(p.numHarts()));
        auto spin = a.newLabel();
        a.bind(spin);
        a.ld(t5, kDoneOff, s0);
        a.blt(t5, t4, spin);
        // Serialize past the spin: without this fence the final loads
        // could issue speculatively before the last done-bump and read
        // pre-drain values (the MP weak mechanism, here a harness bug).
        a.fence();
        uint32_t slot = p.slotBase(p.numHarts());
        for (uint8_t loc : p.finalObs) {
            a.ld(t2, int32_t(loc) * kLocStride, s0);
            emitPackSlot(a, t2, slot++);
        }
    }
    emitExit(a);
}

Assembler
assemble(const LitmusProgram &p, const std::vector<uint32_t> &skews,
         const std::vector<uint32_t> &warmMasks)
{
    Assembler a(kDramBase);
    const uint32_t n = p.numHarts();
    std::vector<Assembler::Label> hartL;
    for (uint32_t h = 0; h < n; h++)
        hartL.push_back(a.newLabel());
    if (n > 1) {
        a.csrr(t0, isa::kCsrMhartid);
        for (uint32_t h = 1; h < n; h++) {
            a.li(t1, h);
            a.beq(t0, t1, hartL[h]);
        }
    }
    for (uint32_t h = 0; h < n; h++) {
        a.bind(hartL[h]);
        emitHart(a, p, h, skews[h],
                 h < warmMasks.size() ? warmMasks[h] : 0);
    }
    return a;
}

std::vector<Addr>
stacks(uint32_t n)
{
    std::vector<Addr> s;
    for (uint32_t i = 0; i < n; i++)
        s.push_back(kDramBase + 0x200000 + i * 0x10000);
    return s;
}

std::vector<uint32_t>
drawSkews(uint64_t seed, uint32_t n, uint32_t maxSkew)
{
    // Own stream, decorrelated from the jitter planner's.
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0x5817);
    std::vector<uint32_t> skews(n, 0);
    if (maxSkew)
        for (auto &s : skews)
            s = uint32_t(rng() % (uint64_t(maxSkew) + 1));
    return skews;
}

/** Per-hart prewarm line masks, each line warm with probability 1/2
 *  (own stream, decorrelated from the skew and jitter streams). */
std::vector<uint32_t>
drawWarmMasks(uint64_t seed, const LitmusProgram &p, bool prewarm)
{
    std::vector<uint32_t> masks(p.numHarts(), 0);
    if (!prewarm)
        return masks;
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xA11A);
    for (auto &m : masks)
        m = uint32_t(rng()) & ((1u << p.numLocs()) - 1u);
    return masks;
}

SystemConfig
systemConfig(uint32_t harts, const RunConfig &cfg)
{
    SystemConfig scfg = SystemConfig::multicore(cfg.model == MemModel::Tso);
    scfg.cores = harts;
    scfg.mem.cores = harts;
    scfg.scheduler = cfg.sched;
    // The manual drive loop below has its own cycle budget; the
    // in-run watchdog would only fire on a real kernel deadlock.
    if (cfg.mutateCfg)
        cfg.mutateCfg(scfg);
    return scfg;
}

/**
 * One seeded congestion burst: a bounded window during which the head
 * of one hart's L1 D request channel (or its invalidation-delivery
 * channel from the parent) is re-aged every cycle, freezing that
 * traffic until the burst ends. This is the heavy-tailed half of the
 * shaker: uniform per-message jitter almost never delays one specific
 * load request past a multi-hundred-cycle store-drain chain, but a
 * burst parked on the right channel does — which is exactly the
 * delayed-older-load window TSO's eviction kill exists to close
 * (and, on the fromParent side, the stale-line window WMM's
 * invalidation buffers model). Bursts are bounded, so they perturb
 * timing only and can never wedge the run.
 */
struct Burst {
    uint64_t from = 0;
    uint64_t until = 0;
    cmd::ChannelPort *port = nullptr;
};

std::vector<Burst>
planCongestion(cmd::Kernel &k, const RunConfig &cfg)
{
    std::vector<Burst> bursts;
    if (!cfg.congestBursts)
        return bursts;
    std::vector<cmd::ChannelPort *> cands;
    for (cmd::ChannelPort *cp : k.channelPorts()) {
        const std::string &n = cp->channelName();
        if (n.rfind("mem.chanD", 0) == 0 &&
            (n.size() >= 4 && n.compare(n.size() - 4, 4, ".req") == 0))
            cands.push_back(cp);
        if (n.rfind("mem.chanD", 0) == 0 &&
            n.size() >= 11 &&
            n.compare(n.size() - 11, 11, ".fromParent") == 0)
            cands.push_back(cp);
    }
    if (cands.empty())
        return bursts;
    // Own stream, decorrelated from the skew/prewarm/jitter streams.
    std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + 0xC0A6);
    for (uint32_t i = 0; i < cfg.congestBursts; i++) {
        Burst b;
        b.port = cands[rng() % cands.size()];
        // Alternate between the race region around the start deadline
        // (where the bodies' memory requests actually are — a burst
        // must cover one from its issue onward to delay it past
        // another hart's store-drain chain) and the whole horizon
        // (prewarm/drain coverage).
        if (i & 1)
            b.from = 1 + rng() % cfg.jitterHorizon;
        else
            b.from = uint64_t(kStartDeadline) - 140 + rng() % 200;
        uint32_t len =
            16 + uint32_t(rng() % std::max<uint32_t>(
                              1, cfg.congestMaxLen > 16
                                     ? cfg.congestMaxLen - 15
                                     : 1));
        b.until = b.from + len;
        bursts.push_back(b);
    }
    return bursts;
}

/**
 * The shared drive loop: jitter plan applied at commit boundaries,
 * congestion bursts re-aging their channel head while active, plain
 * Kernel::cycle() steps while any perturbation can still fire. Once
 * the jitter plan and every congestion burst are exhausted (and no
 * per-cycle hook is installed), the tail switches to windowed
 * Kernel::run() steps so the parallel spot checks exercise
 * multi-cycle lookahead sync (stride > 1); sequential schedulers see
 * the identical per-cycle semantics either way.
 * @return false on hang (budget exhausted or host Fail).
 */
bool
drive(System &sys, const RunConfig &cfg)
{
    cmd::Kernel &k = sys.kernel();
    cmd::FaultInjector inj(k);
    std::vector<cmd::FaultPlan> plan;
    if (cfg.jitterEvents)
        plan = inj.planTimingCampaign(cfg.seed, cfg.jitterEvents,
                                      cfg.jitterHorizon,
                                      cfg.jitterMaxDelay);
    std::vector<Burst> bursts = planCongestion(k, cfg);
    uint64_t burstsEnd = 0;
    for (const Burst &b : bursts)
        burstsEnd = std::max(burstsEnd, b.until);
    size_t pi = 0;
    while (!sys.host().allExited() && !sys.host().failed() &&
           k.cycleCount() < cfg.maxCycles) {
        uint64_t now = k.cycleCount();
        if (pi >= plan.size() && now >= burstsEnd && !cfg.perCycle) {
            // Perturbation-free tail: windowed steps. The stride is 1
            // except under the parallel scheduler with lookahead.
            uint64_t step = std::max<uint32_t>(1, k.syncStride());
            if (step > cfg.maxCycles - now)
                step = cfg.maxCycles - now;
            k.run(step);
            continue;
        }
        while (pi < plan.size() && plan[pi].cycle <= now)
            inj.apply(plan[pi++]);
        for (const Burst &b : bursts)
            if (now >= b.from && now < b.until)
                b.port->faultDelayHead(2);
        if (cfg.perCycle)
            cfg.perCycle(k, now);
        k.cycle();
    }
    return sys.host().allExited();
}

RunResult
runInternal(const LitmusProgram &p, const RunConfig &cfg,
            const std::string *bundleDir, std::string *flight)
{
    std::string why;
    if (!p.valid(&why))
        cmd::kfault(cmd::FaultKind::ApiMisuse, "litmus",
                    "cannot lower invalid program '%s': %s",
                    p.name.c_str(), why.c_str());
    const uint32_t n = p.numHarts();
    SystemConfig scfg = systemConfig(n, cfg);
    if (bundleDir) {
        scfg.obs.pipeline = true;
        scfg.obs.pipelinePath = *bundleDir + "/trace.kanata";
        scfg.obs.timeline = true;
        scfg.obs.timelinePath = *bundleDir + "/trace_timeline.json";
    }
    System sys(scfg);
    Assembler a = assemble(p, drawSkews(cfg.seed, n, cfg.maxStartSkew),
                           drawWarmMasks(cfg.seed, p, cfg.prewarm));
    a.load(sys.mem(), kDramBase);
    sys.elaborate();
    sys.start(kDramBase, 0, stacks(n));

    RunResult r;
    r.hang = !drive(sys, cfg);
    r.cycles = sys.kernel().cycleCount();
    if (!r.hang)
        for (uint32_t h = 0; h < n; h++)
            r.outcome |= sys.host().exitCode(h);
    if (flight)
        *flight = sys.kernel().diagnosticReport();
    if (bundleDir)
        sys.writeTraces();
    return r;
}

} // namespace

double
SweepResult::coverage() const
{
    if (allowed.empty())
        return 1.0;
    size_t seen = 0;
    for (Outcome o : allowed)
        seen += hist.count(o);
    return double(seen) / double(allowed.size());
}

std::vector<uint32_t>
lower(const LitmusProgram &p, const std::vector<uint32_t> &skews)
{
    std::string why;
    if (!p.valid(&why) || skews.size() != p.numHarts())
        cmd::kfault(cmd::FaultKind::ApiMisuse, "litmus",
                    "cannot lower program '%s': %s", p.name.c_str(),
                    why.empty() ? "skew count != hart count"
                                : why.c_str());
    return assemble(p, skews, {}).code();
}

RunResult
runOnce(const LitmusProgram &p, const RunConfig &cfg)
{
    return runInternal(p, cfg, nullptr, nullptr);
}

SweepResult
sweep(const LitmusProgram &p, RunConfig cfg, uint64_t seed0,
      uint32_t runs)
{
    SweepResult s;
    s.allowed = enumerateOutcomes(p, cfg.model);
    for (uint32_t i = 0; i < runs; i++) {
        cfg.seed = seed0 + i;
        RunResult r = runOnce(p, cfg);
        if (r.hang) {
            s.hangs++;
            continue;
        }
        s.hist[r.outcome]++;
        if (!s.allowed.count(r.outcome) &&
            std::find(s.forbidden.begin(), s.forbidden.end(),
                      r.outcome) == s.forbidden.end()) {
            if (s.forbidden.empty())
                s.firstForbiddenSeed = cfg.seed;
            s.forbidden.push_back(r.outcome);
        }
    }
    return s;
}

RunResult
writeReproBundle(const std::string &dir, const LitmusProgram &p,
                 const RunConfig &cfg, const SweepResult *sw)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);

    std::string flight;
    RunResult r = runInternal(p, cfg, &dir, &flight);

    std::ofstream f(dir + "/flight.txt");
    f << flight;
    f.close();

    std::ofstream o(dir + "/repro.txt");
    o << "litmus repro bundle\n"
      << "===================\n"
      << "test:      " << p.name << "\n"
      << "program:   " << p.describe() << "\n"
      << "model:     " << toString(cfg.model) << "\n"
      << "scheduler: " << schedName(cfg.sched) << "\n"
      << "seed:      " << cfg.seed << "\n"
      << "jitter:    " << cfg.jitterEvents << " delays <= "
      << cfg.jitterMaxDelay << " cycles in [1," << cfg.jitterHorizon
      << "]\n"
      << "outcome:   " << formatOutcome(p, r.outcome)
      << (r.hang ? "  (HANG)" : "") << "\n"
      << "cycles:    " << r.cycles << "\n";

    std::set<Outcome> allowed = enumerateOutcomes(p, cfg.model);
    o << "\nallowed under " << toString(cfg.model) << " ("
      << allowed.size() << "):\n";
    for (Outcome a : allowed)
        o << "  " << formatOutcome(p, a) << "\n";
    o << "\nverdict: "
      << (r.hang ? "HANG"
                 : allowed.count(r.outcome) ? "allowed" : "FORBIDDEN")
      << "\n";

    if (sw) {
        o << "\nsweep histogram:\n";
        for (const auto &[out, cnt] : sw->hist)
            o << "  " << cnt << "x " << formatOutcome(p, out)
              << (sw->allowed.count(out) ? "" : "   <-- FORBIDDEN")
              << "\n";
        if (sw->hangs)
            o << "  " << sw->hangs << "x HANG\n";
    }

    // The per-hart start skews, prewarm masks and the exact generated
    // code: enough to re-run this execution without the harness.
    auto skews = drawSkews(cfg.seed, p.numHarts(), cfg.maxStartSkew);
    auto masks = drawWarmMasks(cfg.seed, p, cfg.prewarm);
    o << "\nstart skews:";
    for (uint32_t s : skews)
        o << " " << s;
    o << "\nprewarm line masks:";
    for (uint32_t m : masks)
        o << " 0x" << std::hex << m << std::dec;
    o << "\n\ndisassembly (entry 0x" << std::hex << kDramBase
      << std::dec << "):\n";
    auto code = assemble(p, skews, masks).code();
    for (size_t i = 0; i < code.size(); i++)
        o << "  +" << i * 4 << ":\t"
          << isa::disasm(isa::decode(code[i])) << "\n";

    // Jitter plan, re-derived the same way the run derived it (needs
    // an elaborated design of the same shape for channel names).
    if (cfg.jitterEvents) {
        SystemConfig scfg = systemConfig(p.numHarts(), cfg);
        System sys(scfg);
        sys.elaborate();
        cmd::FaultInjector inj(sys.kernel());
        o << "\njitter plan:\n";
        for (const auto &pl : inj.planTimingCampaign(
                 cfg.seed, cfg.jitterEvents, cfg.jitterHorizon,
                 cfg.jitterMaxDelay))
            o << "  " << pl.describe() << "\n";
    }
    return r;
}

uint64_t
runMpStress(const RunConfig &cfg, uint32_t rounds, bool fenced)
{
    SystemConfig scfg = systemConfig(2, cfg);
    System sys(scfg);

    Assembler a(kDramBase);
    const Addr dataA = kDramBase + kDataOff;
    const int32_t flagOff = kLocStride;
    const int32_t ackOff = 2 * kLocStride;
    auto hart1 = a.newLabel();
    a.csrr(t0, isa::kCsrMhartid);
    a.bnez(t0, hart1);
    // Writer, in lockstep with the observer: publish data then flag,
    // then wait for the ack before the next round. The ack keeps the
    // two harts racing on the SAME round — a free-running writer
    // would leave flag far ahead of the round being checked and the
    // weak window would almost never open.
    a.li(s0, dataA);
    a.li(s2, 0);
    a.li(s3, int64_t(rounds));
    auto l0 = a.newLabel();
    auto spinw = a.newLabel();
    a.bind(l0);
    a.addi(s2, s2, 1);
    a.sd(s2, 0, s0);
    if (fenced)
        a.fence();
    a.sd(s2, flagOff, s0);
    a.bind(spinw);
    a.ld(t1, ackOff, s0);
    a.blt(t1, s2, spinw);
    a.bne(s2, s3, l0);
    a.li(a0, 0);
    emitExit(a);
    // Observer: spin flag >= r, [fence], check data >= r, ack r.
    a.bind(hart1);
    a.li(s0, dataA);
    a.li(s2, 0);
    a.li(s3, int64_t(rounds));
    a.li(a0, 0); // violation count
    auto l1 = a.newLabel();
    auto spin = a.newLabel();
    auto ok = a.newLabel();
    a.bind(l1);
    a.addi(s2, s2, 1);
    a.bind(spin);
    a.ld(t1, flagOff, s0);
    a.blt(t1, s2, spin);
    if (fenced)
        a.fence();
    a.ld(t2, 0, s0);
    a.bge(t2, s2, ok);
    a.addi(a0, a0, 1);
    a.bind(ok);
    a.sd(s2, ackOff, s0);
    a.bne(s2, s3, l1);
    emitExit(a);

    a.load(sys.mem(), kDramBase);
    sys.elaborate();
    sys.start(kDramBase, 0, stacks(2));

    RunConfig dcfg = cfg;
    // Spin rounds under jitter take longer than a straight-line
    // litmus run; scale the budget with the round count.
    dcfg.maxCycles =
        std::max<uint64_t>(cfg.maxCycles, uint64_t(rounds) * 30000);
    dcfg.jitterHorizon =
        std::max<uint64_t>(cfg.jitterHorizon, uint64_t(rounds) * 500);
    if (!drive(sys, dcfg))
        cmd::kfault(cmd::FaultKind::Watchdog, "litmus",
                    "MP stress hang (model=%s fenced=%d seed=%llu)",
                    toString(cfg.model), int(fenced),
                    (unsigned long long)cfg.seed);
    return sys.host().exitCode(1);
}

} // namespace riscy::litmus
