#include "litmus/corpus.hh"

#include "core/fault.hh"

namespace riscy::litmus {

using I = LitmusInst;

namespace {

// Location aliases for readability. Each lowers to its own cache line.
// (z/w are reserved for future shapes that need a third location.)
[[maybe_unused]] constexpr uint8_t x = 0, y = 1, z = 2, w = 3;

LitmusProgram
prog(std::string name, std::vector<std::vector<LitmusInst>> harts,
     std::vector<uint8_t> finalObs = {})
{
    LitmusProgram p;
    p.name = std::move(name);
    p.harts = std::move(harts);
    p.finalObs = std::move(finalObs);
    return p;
}

std::vector<CorpusEntry>
build()
{
    std::vector<CorpusEntry> c;

    // SB (store buffering / Dekker): the canonical store-buffer
    // litmus. r0=r1=0 is allowed under BOTH models (TSO permits
    // store→load reordering) — but reaching it requires the stores to
    // actually linger in a buffer past the loads, so it is the
    // baseline coverage obligation for the shaker everywhere.
    c.push_back({prog("SB",
                      {{I::st(x, 1), I::ld(y)}, //
                       {I::st(y, 1), I::ld(x)}}),
                 {packOutcome({0, 0})},
                 {packOutcome({0, 0})}});

    // SB+fence: FENCEs restore SC; (0,0) becomes forbidden under both
    // models. No coverage obligation — every allowed outcome is
    // reachable by plain interleaving.
    c.push_back({prog("SB+fence",
                      {{I::st(x, 1), I::fence(), I::ld(y)},
                       {I::st(y, 1), I::fence(), I::ld(x)}}),
                 {},
                 {}});

    // SB+amo: AMO stores. Under TSO an AMO is a full barrier (drains
    // the buffer, writes memory directly) so (0,0) is forbidden; under
    // WMM the subsequent load may still return a stale value from the
    // invalidation buffer — (0,0) stays allowed and separates the
    // models, so observing it is a WMM coverage obligation.
    c.push_back({prog("SB+amo",
                      {{I::amoSwap(x, 1), I::ld(y)},
                       {I::amoSwap(y, 1), I::ld(x)}}),
                 {},
                 {packOutcome({0, 0})}});

    // MP (message passing): data + flag, no fences. r(flag)=1 ∧
    // r(data)=0 is TSO-forbidden (the evict-kill path enforces it) but
    // WMM-allowed — the flagship model-separating outcome.
    c.push_back({prog("MP",
                      {{I::st(x, 1), I::st(y, 1)}, //
                       {I::ld(y), I::ld(x)}}),
                 {},
                 {packOutcome({1, 0})}});

    // MP+fence: fences on both sides forbid the reorder everywhere.
    c.push_back({prog("MP+fence",
                      {{I::st(x, 1), I::fence(), I::st(y, 1)},
                       {I::ld(y), I::fence(), I::ld(x)}}),
                 {},
                 {}});

    // LB (load buffering): r0=r1=1 needs load→store reordering, which
    // neither model permits (stores only reach memory post-commit).
    c.push_back({prog("LB",
                      {{I::ld(x), I::st(y, 1)}, //
                       {I::ld(y), I::st(x, 1)}}),
                 {},
                 {}});

    // CoRR (coherent read-read): same-address loads may never travel
    // backwards in coherence order, under any model.
    c.push_back({prog("CoRR",
                      {{I::st(x, 1)}, //
                       {I::ld(x), I::ld(x)}}),
                 {},
                 {}});

    // S: read of the flag vs coherence order of the data. r=1 ∧
    // final x=1 is TSO-forbidden; WMM allows it because P0 may drain
    // y before x.
    c.push_back({prog("S",
                      {{I::st(x, 2), I::st(y, 1)}, //
                       {I::ld(y), I::st(x, 1)}},
                      {x}),
                 {},
                 {}});

    // R: store-store on one side vs store-load on the other.
    c.push_back({prog("R",
                      {{I::st(x, 1), I::st(y, 1)}, //
                       {I::st(y, 2), I::ld(x)}},
                      {y}),
                 {},
                 {}});

    // 2+2W: writes only; final x=1 ∧ y=1 needs both harts' second
    // store to drain before the other's first — WMM-only.
    c.push_back({prog("2+2W",
                      {{I::st(x, 1), I::st(y, 2)},
                       {I::st(y, 1), I::st(x, 2)}},
                      {x, y}),
                 {},
                 {}});

    // WRC (write-to-read causality), 3 harts: P2 observing y=1 must
    // also observe x=1 under TSO; WMM lets the stale x=0 survive in
    // P2's invalidation buffer.
    c.push_back({prog("WRC",
                      {{I::st(x, 1)},
                       {I::ld(x), I::st(y, 1)},
                       {I::ld(y), I::ld(x)}}),
                 {},
                 {}});

    // IRIW, 4 harts: the multi-copy-atomicity test. Both readers
    // disagreeing on the store order — (1,0) and (1,0) — is
    // TSO-forbidden, WMM-allowed. The shaker does reach it (each
    // reader's stale line parked in its invalidation buffer) but only
    // at ~1% of runs, too thin to be a hard coverage obligation.
    c.push_back({prog("IRIW",
                      {{I::st(x, 1)},
                       {I::st(y, 1)},
                       {I::ld(x), I::ld(y)},
                       {I::ld(y), I::ld(x)}}),
                 {},
                 {}});

    // IRIW+fence: fences between the reader loads forbid the
    // disagreement under both models (WMM is multi-copy atomic; the
    // fence reconciles the invalidation buffer).
    c.push_back({prog("IRIW+fence",
                      {{I::st(x, 1)},
                       {I::st(y, 1)},
                       {I::ld(x), I::fence(), I::ld(y)},
                       {I::ld(y), I::fence(), I::ld(x)}}),
                 {},
                 {}});

    return c;
}

} // namespace

const std::vector<CorpusEntry> &
corpus()
{
    static const std::vector<CorpusEntry> c = build();
    return c;
}

const CorpusEntry &
corpusEntry(const std::string &name)
{
    for (const auto &e : corpus())
        if (e.prog.name == name)
            return e;
    cmd::kfault(cmd::FaultKind::ApiMisuse, "litmus",
                "unknown corpus entry '%s'", name.c_str());
}

} // namespace riscy::litmus
