/**
 * @file
 * Declarative litmus programs and reference memory-model semantics.
 *
 * A litmus test is a handful of tiny straight-line per-hart programs
 * over a few shared locations, plus the question "which final register
 * / memory outcomes may a legal execution produce?". This header gives
 * the harness both halves:
 *
 *  - LitmusProgram: the declarative form (per-hart instruction lists
 *    over locations 0..3; every load is an observed slot, and the
 *    final memory value of selected locations can be observed too).
 *    src/litmus/runner.* lowers the same struct onto the real
 *    quad-core System via asmkit.
 *
 *  - enumerateOutcomes(): an exhaustive operational-model enumeration
 *    of the allowed outcome set under TSO or WMM. Both models follow
 *    the instantaneous-instruction-execution (I2E) style of the WMM
 *    paper (Zhang/Vijayaraghavan/Arvind): harts execute their program
 *    strictly in order against a monolithic memory plus per-hart
 *    buffers, and all weak behavior comes from the buffers:
 *
 *      TSO:  a per-hart FIFO store buffer with load bypassing —
 *            exactly the classic x86-TSO machine. FENCE and AMOs
 *            require the buffer to be empty.
 *      WMM:  a per-hart store buffer whose entries drain in any order
 *            that respects per-address FIFO, plus a per-hart
 *            invalidation buffer (ib) of stale values a load may still
 *            return (the model of load-load reordering). A store
 *            purges the hart's own ib for that address; a load from
 *            monolithic memory purges the address's ib entries; a load
 *            from the ib consumes that entry and every older one for
 *            the address (coherence); FENCE requires an empty store
 *            buffer and clears the whole ib; AMOs require an empty
 *            store buffer, act on monolithic memory, and push the
 *            displaced value into every other hart's ib (they do NOT
 *            clear the local ib — an acquire still needs a FENCE,
 *            which the spinlock test in test_multicore relies on).
 *
 * The enumeration is a DFS over machine states with memoization; the
 * programs are small (<= 4 harts x ~6 instructions), so the reachable
 * state count is tiny. The allowed set must *contain* everything the
 * detailed implementation can produce — the harness flags any observed
 * outcome outside it as a memory-model violation.
 */
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace riscy::litmus {

enum class MemModel : uint8_t { Tso, Wmm };

const char *toString(MemModel m);

/** Litmus instruction kinds (the abstract side of the lowering). */
enum class LOp : uint8_t {
    Ld,      ///< observed load: value becomes one outcome slot
    St,      ///< plain store of an immediate
    Fence,   ///< full FENCE (the only fence the ISA subset has)
    AmoSwap, ///< amoswap.d loc <- val (result unobserved)
    AmoAdd,  ///< amoadd.d  loc += val (result unobserved)
};

/** One abstract instruction. Values are 1..15 (0 is the initial
 *  memory value); locations are 0..kMaxLocs-1, each lowered to its own
 *  cache line. */
struct LitmusInst {
    LOp op = LOp::Ld;
    uint8_t loc = 0;
    uint8_t val = 0;

    static LitmusInst ld(uint8_t loc) { return {LOp::Ld, loc, 0}; }
    static LitmusInst st(uint8_t loc, uint8_t val)
    {
        return {LOp::St, loc, val};
    }
    static LitmusInst fence() { return {LOp::Fence, 0, 0}; }
    static LitmusInst amoSwap(uint8_t loc, uint8_t val)
    {
        return {LOp::AmoSwap, loc, val};
    }
    static LitmusInst amoAdd(uint8_t loc, uint8_t val)
    {
        return {LOp::AmoAdd, loc, val};
    }
};

/**
 * A packed outcome: 4 bits per observed slot. Slots are numbered
 * hart-major over every Ld in program order, followed by one slot per
 * LitmusProgram::finalObs entry (the location's final memory value).
 */
using Outcome = uint64_t;

struct LitmusProgram {
    static constexpr uint32_t kMaxLocs = 4;
    /** 4 bits per slot in Outcome; 15 (not 16) because the lowering
     *  returns outcomes through the host exit protocol, which shifts
     *  the code left by one bit. */
    static constexpr uint32_t kMaxSlots = 15;

    std::string name;
    std::vector<std::vector<LitmusInst>> harts;
    /** Locations whose final (fully drained) memory value is observed,
     *  appended after all load slots. */
    std::vector<uint8_t> finalObs;

    uint32_t numHarts() const { return uint32_t(harts.size()); }
    /** Loads in hart @p h (each is one observed slot). */
    uint32_t numLoads(uint32_t h) const;
    /** Global slot index of hart @p h's first load. */
    uint32_t slotBase(uint32_t h) const;
    /** All load slots + final-memory slots. */
    uint32_t numSlots() const;
    /** Highest location index used (for lowering / model sizing). */
    uint32_t numLocs() const;

    /** Human-readable listing ("P0: St x=1; Ld y | P1: ..."). */
    std::string describe() const;

    /** Structural validity: slot/loc/value bounds for the 4-bit
     *  packing and the s-register lowering budget. */
    bool valid(std::string *why = nullptr) const;
};

/** Extract slot @p i of a packed outcome. */
inline uint32_t
slotValue(Outcome o, uint32_t i)
{
    return uint32_t(o >> (4 * i)) & 0xf;
}

/** "r0=1 r1=0 [x]=2" rendering of a packed outcome. */
std::string formatOutcome(const LitmusProgram &p, Outcome o);

/** Pack a list of slot values into an Outcome (tests/corpus). */
Outcome packOutcome(const std::vector<uint32_t> &slots);

/**
 * Every outcome a legal @p m execution of @p p may produce, by
 * exhaustive operational-model enumeration (memoized DFS). Throws
 * cmd::KernelFault(ApiMisuse) if the program is invalid or the state
 * space exceeds an internal safety cap (never hit by corpus/fuzz-sized
 * programs).
 */
std::set<Outcome> enumerateOutcomes(const LitmusProgram &p, MemModel m);

} // namespace riscy::litmus
