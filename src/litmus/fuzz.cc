#include "litmus/fuzz.hh"

namespace riscy::litmus {

LitmusProgram
generateProgram(std::mt19937_64 &rng)
{
    auto pick = [&rng](uint32_t bound) { return uint32_t(rng() % bound); };
    LitmusProgram p;
    p.harts.resize(2);
    uint32_t loads = 0;
    for (auto &hart : p.harts) {
        uint32_t len = 2 + pick(3);
        for (uint32_t i = 0; i < len; i++) {
            uint8_t loc = uint8_t(pick(2));
            uint8_t val = uint8_t(1 + pick(2));
            uint32_t roll = pick(100);
            if (roll < 40) {
                hart.push_back(LitmusInst::st(loc, val));
            } else if (roll < 80 && loads < 8) {
                hart.push_back(LitmusInst::ld(loc));
                loads++;
            } else if (roll < 90) {
                hart.push_back(LitmusInst::fence());
            } else if (roll < 95) {
                hart.push_back(LitmusInst::amoSwap(loc, val));
            } else {
                hart.push_back(LitmusInst::amoAdd(loc, val));
            }
        }
    }
    if (pick(2))
        p.finalObs.push_back(0);
    if (pick(2))
        p.finalObs.push_back(1);
    // valid() needs at least one observed slot; also a pure-fence hart
    // is legal but pointless — give it one load.
    if (loads == 0 && p.finalObs.empty())
        p.harts[0].push_back(LitmusInst::ld(0));
    p.name = "fuzz";
    return p;
}

LitmusProgram
shrinkProgram(const LitmusProgram &p,
              const std::function<bool(const LitmusProgram &)> &stillFails)
{
    LitmusProgram cur = p;
    bool changed = true;
    while (changed) {
        changed = false;
        // Whole harts first: the biggest single cut.
        for (uint32_t h = 0; h < cur.numHarts() && cur.numHarts() > 1;
             h++) {
            LitmusProgram cand = cur;
            cand.harts.erase(cand.harts.begin() + h);
            if (cand.valid() && stillFails(cand)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
        if (changed)
            continue;
        // Single instructions.
        for (uint32_t h = 0; h < cur.numHarts() && !changed; h++)
            for (uint32_t i = 0; i < cur.harts[h].size(); i++) {
                if (cur.harts[h].size() == 1)
                    break; // valid() rejects empty harts
                LitmusProgram cand = cur;
                cand.harts[h].erase(cand.harts[h].begin() + i);
                if (cand.valid() && stillFails(cand)) {
                    cur = std::move(cand);
                    changed = true;
                    break;
                }
            }
        if (changed)
            continue;
        // Final-memory observations.
        for (uint32_t k = 0; k < cur.finalObs.size(); k++) {
            LitmusProgram cand = cur;
            cand.finalObs.erase(cand.finalObs.begin() + k);
            if (cand.valid() && stillFails(cand)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    return cur;
}

FuzzResult
fuzz(const FuzzConfig &cfg)
{
    FuzzResult res;
    std::mt19937_64 master(cfg.seed);
    for (uint32_t i = 0; i < cfg.programs; i++) {
        uint64_t progSeed = master();
        std::mt19937_64 rng(progSeed);
        LitmusProgram p = generateProgram(rng);
        p.name = "fuzz-" + std::to_string(i);
        res.programs++;

        SweepResult sw =
            sweep(p, cfg.run, progSeed ^ 0xF022ULL, cfg.runsPerProgram);
        res.runs += cfg.runsPerProgram;
        res.hangs += sw.hangs;
        if (sw.forbidden.empty())
            continue;

        // Shrink against "any forbidden outcome reappears within a
        // small seed window anchored at the first failing seed".
        uint64_t anchor = sw.firstForbiddenSeed;
        auto pred = [&](const LitmusProgram &q) {
            SweepResult s = sweep(q, cfg.run, anchor, cfg.shrinkRuns);
            res.runs += cfg.shrinkRuns;
            return !s.forbidden.empty();
        };
        LitmusProgram shrunk = shrinkProgram(p, pred);
        shrunk.name = p.name + "-shrunk";

        SweepResult fin = sweep(shrunk, cfg.run, anchor, cfg.shrinkRuns);
        res.runs += cfg.shrinkRuns;
        uint64_t failSeed =
            fin.forbidden.empty() ? anchor : fin.firstForbiddenSeed;

        FuzzFailure fail;
        fail.original = p;
        fail.shrunk = shrunk;
        fail.outcome = fin.forbidden.empty() ? sw.forbidden.front()
                                             : fin.forbidden.front();
        fail.failSeed = failSeed;
        if (!cfg.bundleDir.empty()) {
            RunConfig bc = cfg.run;
            bc.seed = failSeed;
            fail.bundleDir = cfg.bundleDir + "/" + shrunk.name;
            writeReproBundle(fail.bundleDir, shrunk, bc, &fin);
        }
        res.failures.push_back(std::move(fail));
    }
    return res;
}

} // namespace riscy::litmus
