/**
 * @file
 * Litmus runner: lowers LitmusProgram structs onto the real multicore
 * System, drives seeded perturbation-jittered runs, histograms the
 * observed outcomes, and checks every one against the reference
 * model's allowed set (litmus/model.hh). A forbidden outcome is a
 * memory-model bug in the implementation; the runner can then write a
 * self-contained repro bundle (program listing + disassembly, seed,
 * jitter plan, Konata pipeline trace, flight-recorder dump).
 *
 * Lowering (see lower() for details): harts dispatch on mhartid; each
 * abstract location lands on its own cache line in a shared data
 * page; observed loads go to callee-saved registers and are packed
 * 4 bits per global slot into a0. Each hart then prewarms a seeded
 * subset of the data lines and rendezvouses on an AMO start barrier
 * (absorbing the dispatch mispredict and cold-icache refetch that
 * would otherwise serialize the harts) before racing into its body; a
 * seeded per-hart start-skew delay loop plus
 * FaultInjector::planTimingCampaign() message-delay jitter
 * decorrelate the schedules across runs; harts signal completion on
 * an AMO done-counter so hart 0 can observe drained final memory, and
 * every hart exits through the host device with its packed slots —
 * the run's Outcome is the OR of all exit codes.
 */
#pragma once

#include <functional>
#include <map>

#include "litmus/model.hh"
#include "proc/system.hh"

namespace riscy::litmus {

/** One run's knobs. Every field participates in determinism: a fixed
 *  (program, RunConfig) pair always reproduces the same execution. */
struct RunConfig {
    MemModel model = MemModel::Tso;
    cmd::SchedulerKind sched = cmd::SchedulerKind::EventDriven;
    /** Seed for this run's start skews and timing jitter. */
    uint64_t seed = 1;
    /** Timing perturbations per run (0 disables the shaker). */
    uint32_t jitterEvents = 24;
    /** Max extra cycles per delayed message. */
    uint32_t jitterMaxDelay = 24;
    /** Injection window: jitter and congestion bursts land in cycles
     *  [1, jitterHorizon]. The default covers the start rendezvous
     *  (cycle ~2000) plus the race and drain that follow it. */
    uint64_t jitterHorizon = 2600;
    /**
     * Seeded congestion bursts per run (0 disables): bounded windows
     * during which one hart's L1 D request channel (or its
     * invalidation-delivery channel) is frozen, modeling a congested
     * port. The heavy-tailed half of the shaker — this is what delays
     * one hart's older load past another hart's whole store-drain
     * chain (the window TSO's eviction kill closes) or holds a stale
     * line in place (the WMM invalidation-buffer window); uniform
     * per-message jitter is far too light-tailed to do either.
     */
    uint32_t congestBursts = 4;
    /** Burst length range: [16, congestMaxLen] cycles. */
    uint32_t congestMaxLen = 160;
    /** Max per-hart start-skew NOP-slide length. Small values keep the
     *  harts racing within a few cycles of the rendezvous deadline;
     *  large slides re-dilute the race window they exist to vary. */
    uint32_t maxStartSkew = 16;
    /**
     * Seeded cache prewarm: before the start barrier each hart loads
     * a per-seed subset of the data lines (initial values, discarded —
     * semantically transparent under both models). Warm/cold line
     * combinations open structurally different race windows; e.g. a
     * warm younger-load line beside a cold older-load line is the
     * load-load reorder window that TSO's eviction kill closes.
     */
    bool prewarm = true;
    uint64_t maxCycles = 400000;
    /** Last-chance config hook (negative tests disable e.g. the TSO
     *  evict-kill here). Runs after the model/core count are set. */
    std::function<void(SystemConfig &)> mutateCfg;
    /** Per-cycle drive hook (directed perturbations in tests: e.g.
     *  freeze one channel over an exact window via
     *  Kernel::channelPorts()). Called between cycles. */
    std::function<void(cmd::Kernel &, uint64_t)> perCycle;
};

/** What one lowered execution produced. */
struct RunResult {
    Outcome outcome = 0;
    bool hang = false;    ///< budget exhausted or host failure
    uint64_t cycles = 0;  ///< kernel cycles consumed
};

/** Aggregate of a seed sweep over one program. */
struct SweepResult {
    std::map<Outcome, uint64_t> hist;    ///< observed outcome counts
    std::set<Outcome> allowed;           ///< reference-model set
    std::vector<Outcome> forbidden;      ///< distinct outcomes ∉ allowed
    uint64_t firstForbiddenSeed = 0;     ///< seed of first violation
    uint32_t hangs = 0;

    bool clean() const { return forbidden.empty() && hangs == 0; }
    /** Fraction of the allowed set actually visited. */
    double coverage() const;
    bool observed(Outcome o) const { return hist.count(o) != 0; }
};

/** Lower @p p for @p numHarts cores at entry @p base; returns the
 *  per-run assembled words (exposed for repro bundles / tests).
 *  @p skews holds one delay-loop count per hart. */
std::vector<uint32_t> lower(const LitmusProgram &p,
                            const std::vector<uint32_t> &skews);

/** Run @p p once under @p cfg on a fresh System. Deterministic. */
RunResult runOnce(const LitmusProgram &p, const RunConfig &cfg);

/** Run @p p for each seed in [seed0, seed0+runs), checking outcomes
 *  against enumerateOutcomes(p, cfg.model). cfg.seed is overridden
 *  per run. */
SweepResult sweep(const LitmusProgram &p, RunConfig cfg, uint64_t seed0,
                  uint32_t runs);

/**
 * Write a self-contained repro bundle for (p, cfg) into directory
 * @p dir (created if needed): repro.txt (program, config, expected vs
 * observed, disassembly), trace.kanata (Konata pipeline trace of the
 * deterministic re-run), trace_timeline.json (rule timeline /
 * flight recorder), flight.txt (kernel diagnostic report). @return
 * the re-run's result (equal to the original run by determinism).
 */
RunResult writeReproBundle(const std::string &dir, const LitmusProgram &p,
                           const RunConfig &cfg, const SweepResult *sw);

/**
 * Iterated message-passing stress (the e2e shape of test_multicore,
 * under runner control): a writer hart publishes data then flag for
 * @p rounds rounds, an observer spins on the flag and counts stale
 * data reads. With @p fenced both sides fence. Returns the observed
 * violation count — must be 0 under TSO unfenced and under WMM
 * fenced; nonzero under WMM unfenced is the model-separating weak
 * behavior (and nonzero under TSO unfenced means the implementation
 * is broken — the negative-test hook). Jitter applies as in runOnce.
 */
uint64_t runMpStress(const RunConfig &cfg, uint32_t rounds, bool fenced);

} // namespace riscy::litmus
