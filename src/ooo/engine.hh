/**
 * @file
 * Rename-engine modules of the OOO core: physical register file with
 * true presence bits (the paper's RDYB), the optimistic Scoreboard,
 * the speculative/committed rename table with per-tag checkpoints,
 * the free list, the speculation-tag manager, and the bypass network.
 *
 * Conflict-matrix declarations follow Section IV of the paper:
 * Scoreboard.setReady < {rdy, setNotReady}, Bypass.set < get, and the
 * rollback/flush methods are conflict-free under the one-atomic-kill
 * discipline described in spec_fifo.hh.
 */
#pragma once

#include "core/cmd.hh"
#include "ooo/uop.hh"

namespace riscy {

/** Physical register file + presence bits (paper's PRF and RDYB). */
class Prf : public cmd::Module
{
  public:
    Prf(cmd::Kernel &k, const std::string &name, uint32_t numPhys);

    uint32_t numPhys() const { return num_; }

    /** Value of a present register (reg-read stage; guarded). */
    uint64_t read(PhysReg r) const;
    bool present(PhysReg r) const { return presence_.read(r) != 0; }
    /** Raw value probe (commit trace / testbench; no guard). */
    uint64_t peek(PhysReg r) const { return vals_.read(r); }
    /** Write a result and set its presence bit. */
    void write(PhysReg r, uint64_t v);
    /** Clear presence when @p r is allocated as a new destination. */
    void setNotReady(PhysReg r);
    /** After a flush every live (committed) register has its value. */
    void setAllReady();

    cmd::Method &readM, &writeM, &setNotReadyM, &setAllReadyM;

  private:
    uint32_t num_;
    cmd::RegArray<uint64_t> vals_;
    cmd::RegArray<uint8_t> presence_;
};

/** Optimistic presence bits consulted when entering an IQ. */
class Scoreboard : public cmd::Module
{
  public:
    Scoreboard(cmd::Kernel &k, const std::string &name, uint32_t numPhys);

    bool rdy(PhysReg r) const;
    void setReady(PhysReg r);
    void setNotReady(PhysReg r);
    void setAllReady();

    cmd::Method &rdyM, &setReadyM, &setNotReadyM, &setAllReadyM;

  private:
    cmd::RegArray<uint8_t> bits_;
};

/**
 * Speculation-tag manager (paper Section V): a finite set of tag bits
 * assigned to branches/JALRs; younger instructions carry the tags of
 * the unresolved older branches in their specMask.
 */
class SpecManager : public cmd::Module
{
  public:
    SpecManager(cmd::Kernel &k, const std::string &name, uint32_t numTags);

    uint32_t numTags() const { return numTags_; }
    /** Mask of currently active (unresolved) tags. */
    SpecMask activeMask() const { return active_.read(); }
    bool canAlloc() const;

    /** Allocate a tag for a branch (guarded on availability). */
    uint8_t alloc();
    /** Branch resolved correctly: retire its tag. */
    void commit(uint8_t tag);
    /**
     * Branch at @p tag mispredicted: free it and every younger tag.
     * @return the mask of all freed tags (callers kill with it).
     */
    SpecMask squash(uint8_t tag);
    /** Full flush: no active speculation. */
    void clear();

    cmd::Method &allocM, &commitM, &squashM, &clearM;

  private:
    uint32_t numTags_;
    cmd::Reg<SpecMask> active_;
    /// tags active when each tag was allocated (age ordering)
    cmd::RegArray<SpecMask> dependsMask_;
};

/** Speculative + committed rename tables with per-tag checkpoints. */
class RenameTable : public cmd::Module
{
  public:
    RenameTable(cmd::Kernel &k, const std::string &name, uint32_t numTags);

    PhysReg spec(uint8_t arch) const { return spec_.read(arch); }
    PhysReg committed(uint8_t arch) const { return comm_.read(arch); }

    /** Speculative mapping update at rename. */
    void setSpec(uint8_t arch, PhysReg pr);
    /** Committed mapping update at commit. */
    void setCommitted(uint8_t arch, PhysReg pr);
    /** Take a checkpoint for @p tag (at branch rename). */
    void snapshot(uint8_t tag);
    /**
     * Checkpoint from the rename rule's local working map (captures
     * mappings of earlier slots in the same rename group).
     */
    void snapshotFrom(uint8_t tag, const PhysReg *map32);
    /** One-time reset: arch i -> phys i (call inside runAtomically). */
    void initIdentity();
    /** Restore the checkpoint of @p tag (branch mispredict). */
    void rollback(uint8_t tag);
    /** Full flush: speculative table := committed table. */
    void reset();

    cmd::Method &setSpecM, &setCommittedM, &snapshotM, &rollbackM, &resetM;

  private:
    cmd::RegArray<PhysReg> spec_, comm_;
    cmd::RegArray<PhysReg> snaps_; ///< numTags x 32
};

/** Free list of physical registers, with per-tag head checkpoints. */
class FreeList : public cmd::Module
{
  public:
    FreeList(cmd::Kernel &k, const std::string &name, uint32_t numPhys,
             uint32_t numTags);

    bool canAlloc(uint32_t n = 1) const { return count_.read() >= n; }

    /** Pop a free register (guarded). */
    PhysReg alloc();
    /** Pop @p n registers at once (2-wide rename). */
    void allocGroup(PhysReg *out, uint32_t n);
    /** The i-th register alloc would return (rename look-ahead). */
    PhysReg
    peekFree(uint32_t i) const
    {
        return ring_.read((head_.read() + i) % num_);
    }
    /** Return up to @p n registers freed at commit (stale mappings). */
    void freeGroup(const PhysReg *regs, uint32_t n);
    void snapshot(uint8_t tag);
    /** Checkpoint as if @p alreadyAllocated more regs were popped. */
    void snapshotAt(uint8_t tag, uint32_t alreadyAllocated);
    void rollback(uint8_t tag);
    /** Rebuild as "every register not in the committed map" (flush). */
    void rebuild(const RenameTable &rt);
    /** One-time reset: registers [first, first+n) are free. */
    void initRange(uint32_t first, uint32_t n);

    cmd::Method &allocM, &freeM, &snapshotM, &rollbackM, &rebuildM;

  private:
    uint32_t num_;
    cmd::RegArray<PhysReg> ring_;
    cmd::Reg<uint32_t> head_, count_;
    cmd::RegArray<uint32_t> snapHead_;

    friend class RenameTable;
};

/**
 * The bypass network (paper Section V-A): Exec and Reg-Write rules
 * publish ALU results with set; Reg-Read rules search the values
 * published in the same cycle with get. set < get.
 */
class Bypass : public cmd::Module
{
  public:
    Bypass(cmd::Kernel &k, const std::string &name, uint32_t ports);

    /** Publish a result on @p port for this cycle. */
    void set(uint32_t port, PhysReg pd, uint64_t val);
    /** Search this cycle's published results for @p ps. */
    bool get(PhysReg ps, uint64_t &val) const;

    cmd::Method &setM, &getM;

  private:
    struct Slot {
        uint64_t cycle = ~0ull;
        PhysReg pd = 0;
        uint64_t val = 0;
    };

    cmd::RegArray<Slot> slots_;
};

} // namespace riscy
