#include "ooo/iq.hh"

namespace riscy {

using namespace cmd;

IssueQueue::IssueQueue(Kernel &k, const std::string &name, uint32_t size,
                       Ordering order)
    : Module(k, name, Conflict::CF),
      enterM(method("enter")), wakeupM(method("wakeup")),
      issueM(method("issue")), wrongSpecM(method("wrongSpec")),
      correctSpecM(method("correctSpec")), clearM(method("clearAll")),
      size_(size), arr_(k, name + ".arr", size),
      count_(k, name + ".count", 0), nextAge_(k, name + ".age", 0)
{
    if (order == Ordering::WakeupIssueEnter) {
        lt(wakeupM, issueM);
        lt(issueM, enterM);
        lt(wakeupM, enterM);
    } else {
        lt(issueM, wakeupM);
        lt(wakeupM, enterM);
        lt(issueM, enterM);
    }
    selfCf(wakeupM);
    selfCf(wrongSpecM);
    selfCf(correctSpecM);
    lt(wrongSpecM, enterM);
    setCm(clearM, enterM, Conflict::C);
    setCm(clearM, issueM, Conflict::C);
}

void
IssueQueue::enter(const Uop &u, bool rdy1, bool rdy2)
{
    enterM();
    require(count_.read() < size_);
    for (uint32_t i = 0; i < size_; i++) {
        if (!arr_.read(i).valid) {
            Entry e;
            e.valid = true;
            e.uop = u;
            e.rdy1 = rdy1;
            e.rdy2 = rdy2;
            e.age = nextAge_.read();
            arr_.write(i, e);
            nextAge_.write(nextAge_.read() + 1);
            count_.write(count_.read() + 1);
            return;
        }
    }
    require(false);
}

void
IssueQueue::wakeup(PhysReg pd)
{
    wakeupM();
    for (uint32_t i = 0; i < size_; i++) {
        Entry e = arr_.read(i);
        if (!e.valid)
            continue;
        bool touched = false;
        if (!e.rdy1 && e.uop.ps1 == pd && e.uop.inst.readsRs1()) {
            e.rdy1 = true;
            touched = true;
        }
        if (!e.rdy2 && e.uop.ps2 == pd && e.uop.inst.readsRs2()) {
            e.rdy2 = true;
            touched = true;
        }
        if (touched)
            arr_.write(i, e);
    }
}

int
IssueQueue::findReady() const
{
    int best = -1;
    uint64_t bestAge = ~0ull;
    for (uint32_t i = 0; i < size_; i++) {
        const Entry &e = arr_.read(i);
        if (e.valid && e.rdy1 && e.rdy2 && e.age < bestAge) {
            best = static_cast<int>(i);
            bestAge = e.age;
        }
    }
    return best;
}

Uop
IssueQueue::issue()
{
    issueM();
    int i = findReady();
    require(i >= 0);
    Uop u = arr_.read(i).uop;
    arr_.write(i, Entry{});
    count_.write(count_.read() - 1);
    return u;
}

void
IssueQueue::wrongSpec(SpecMask deadMask)
{
    wrongSpecM();
    uint32_t killed = 0;
    for (uint32_t i = 0; i < size_; i++) {
        const Entry &e = arr_.read(i);
        if (e.valid && (e.uop.specMask & deadMask)) {
            arr_.write(i, Entry{});
            killed++;
        }
    }
    if (killed)
        count_.write(count_.read() - killed);
}

void
IssueQueue::correctSpec(SpecMask mask)
{
    correctSpecM();
    for (uint32_t i = 0; i < size_; i++) {
        Entry e = arr_.read(i);
        if (e.valid && (e.uop.specMask & mask)) {
            e.uop.specMask &= ~mask;
            arr_.write(i, e);
        }
    }
}

void
IssueQueue::clearAll()
{
    clearM();
    for (uint32_t i = 0; i < size_; i++) {
        if (arr_.read(i).valid)
            arr_.write(i, Entry{});
    }
    count_.write(0);
}

} // namespace riscy
