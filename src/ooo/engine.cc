#include "ooo/engine.hh"

namespace riscy {

using namespace cmd;

// -------------------------------------------------------------------- Prf

Prf::Prf(Kernel &k, const std::string &name, uint32_t numPhys)
    : Module(k, name, Conflict::CF),
      readM(method("read")), writeM(method("write")),
      setNotReadyM(method("setNotReady")),
      setAllReadyM(method("setAllReady")),
      num_(numPhys), vals_(k, name + ".vals", numPhys, 0),
      presence_(k, name + ".presence", numPhys, 1)
{
    selfCf(readM);
    selfCf(writeM);      // distinct destinations by construction
    selfCf(setNotReadyM);
}

uint64_t
Prf::read(PhysReg r) const
{
    readM();
    require(presence_.read(r) != 0);
    return vals_.read(r);
}

void
Prf::write(PhysReg r, uint64_t v)
{
    writeM();
    vals_.write(r, v);
    presence_.write(r, 1);
}

void
Prf::setNotReady(PhysReg r)
{
    setNotReadyM();
    presence_.write(r, 0);
}

void
Prf::setAllReady()
{
    setAllReadyM();
    for (uint32_t i = 0; i < num_; i++) {
        if (!presence_.read(i))
            presence_.write(i, 1);
    }
}

// -------------------------------------------------------------- Scoreboard

Scoreboard::Scoreboard(Kernel &k, const std::string &name, uint32_t numPhys)
    : Module(k, name, Conflict::CF),
      rdyM(method("rdy")), setReadyM(method("setReady")),
      setNotReadyM(method("setNotReady")),
      setAllReadyM(method("setAllReady")),
      bits_(k, name + ".bits", numPhys, 1)
{
    selfCf(rdyM);
    selfCf(setReadyM);
    selfCf(setNotReadyM);
    // Paper Section IV-C: setReady happens logically before the
    // rename-stage reads and clears, enabling doRegWrite < doRename.
    lt(setReadyM, rdyM);
    lt(setReadyM, setNotReadyM);
}

bool
Scoreboard::rdy(PhysReg r) const
{
    rdyM();
    return bits_.read(r) != 0;
}

void
Scoreboard::setReady(PhysReg r)
{
    setReadyM();
    bits_.write(r, 1);
}

void
Scoreboard::setNotReady(PhysReg r)
{
    setNotReadyM();
    bits_.write(r, 0);
}

void
Scoreboard::setAllReady()
{
    setAllReadyM();
    for (uint32_t i = 0; i < bits_.size(); i++) {
        if (!bits_.read(i))
            bits_.write(i, 1);
    }
}

// ------------------------------------------------------------- SpecManager

SpecManager::SpecManager(Kernel &k, const std::string &name,
                         uint32_t numTags)
    : Module(k, name, Conflict::CF),
      allocM(method("alloc")), commitM(method("commit")),
      squashM(method("squash")), clearM(method("clear")),
      numTags_(numTags), active_(k, name + ".active", 0),
      dependsMask_(k, name + ".depends", numTags, 0)
{
    if (numTags > 16)
        cmd::fatal("%s: at most 16 speculation tags", name.c_str());
    selfCf(squashM);
    selfCf(commitM);
}

bool
SpecManager::canAlloc() const
{
    return active_.read() != (1u << numTags_) - 1;
}

uint8_t
SpecManager::alloc()
{
    allocM();
    SpecMask act = active_.read();
    for (uint32_t t = 0; t < numTags_; t++) {
        if (!(act & (1u << t))) {
            active_.write(act | (1u << t));
            dependsMask_.write(t, act);
            return static_cast<uint8_t>(t);
        }
    }
    require(false);
    return 0;
}

void
SpecManager::commit(uint8_t tag)
{
    commitM();
    active_.write(active_.read() & ~(1u << tag));
    // Drop the resolved tag from the other tags' dependency masks.
    for (uint32_t t = 0; t < numTags_; t++) {
        SpecMask d = dependsMask_.read(t);
        if (d & (1u << tag))
            dependsMask_.write(t, d & ~(1u << tag));
    }
}

SpecMask
SpecManager::squash(uint8_t tag)
{
    squashM();
    SpecMask dead = 1u << tag;
    // Every tag that was allocated while `tag` was active is younger
    // and dies with it.
    for (uint32_t t = 0; t < numTags_; t++) {
        if ((active_.read() & (1u << t)) &&
            (dependsMask_.read(t) & (1u << tag)))
            dead |= 1u << t;
    }
    active_.write(active_.read() & ~dead);
    return dead;
}

void
SpecManager::clear()
{
    clearM();
    active_.write(0);
}

// ------------------------------------------------------------- RenameTable

RenameTable::RenameTable(Kernel &k, const std::string &name,
                         uint32_t numTags)
    : Module(k, name, Conflict::CF),
      setSpecM(method("setSpec")), setCommittedM(method("setCommitted")),
      snapshotM(method("snapshot")), rollbackM(method("rollback")),
      resetM(method("reset")),
      spec_(k, name + ".spec", 32), comm_(k, name + ".comm", 32),
      snaps_(k, name + ".snaps", size_t(numTags) * 32)
{
    selfCf(setSpecM);      // distinct arch regs within a rename group
    selfCf(setCommittedM);
    selfCf(rollbackM);     // two same-cycle mispredicts roll back in
    selfCf(snapshotM);     // schedule order; the older one wins last
    // Identity map at reset: arch i -> phys i.
    // (RegArray has no per-element init; done by the core at time 0.)
}

void
RenameTable::setSpec(uint8_t arch, PhysReg pr)
{
    setSpecM();
    spec_.write(arch, pr);
}

void
RenameTable::setCommitted(uint8_t arch, PhysReg pr)
{
    setCommittedM();
    comm_.write(arch, pr);
}

void
RenameTable::snapshot(uint8_t tag)
{
    snapshotM();
    for (uint32_t i = 0; i < 32; i++)
        snaps_.write(size_t(tag) * 32 + i, spec_.read(i));
}

void
RenameTable::snapshotFrom(uint8_t tag, const PhysReg *map32)
{
    snapshotM();
    for (uint32_t i = 0; i < 32; i++)
        snaps_.write(size_t(tag) * 32 + i, map32[i]);
}

void
RenameTable::initIdentity()
{
    for (uint32_t i = 0; i < 32; i++) {
        spec_.write(i, static_cast<PhysReg>(i));
        comm_.write(i, static_cast<PhysReg>(i));
    }
}

void
RenameTable::rollback(uint8_t tag)
{
    rollbackM();
    for (uint32_t i = 0; i < 32; i++)
        spec_.write(i, snaps_.read(size_t(tag) * 32 + i));
}

void
RenameTable::reset()
{
    resetM();
    for (uint32_t i = 0; i < 32; i++)
        spec_.write(i, comm_.read(i));
}

// ---------------------------------------------------------------- FreeList

FreeList::FreeList(Kernel &k, const std::string &name, uint32_t numPhys,
                   uint32_t numTags)
    : Module(k, name, Conflict::CF),
      allocM(method("alloc")), freeM(method("freeGroup")),
      snapshotM(method("snapshot")), rollbackM(method("rollback")),
      rebuildM(method("rebuild")),
      num_(numPhys), ring_(k, name + ".ring", numPhys, 0),
      head_(k, name + ".head", 0), count_(k, name + ".count", 0),
      snapHead_(k, name + ".snapHead", numTags, 0)
{
    selfCf(rollbackM);
}

PhysReg
FreeList::alloc()
{
    allocM();
    require(count_.read() > 0);
    PhysReg r = ring_.read(head_.read());
    head_.write((head_.read() + 1) % num_);
    count_.write(count_.read() - 1);
    return r;
}

void
FreeList::allocGroup(PhysReg *out, uint32_t n)
{
    allocM();
    require(count_.read() >= n);
    for (uint32_t i = 0; i < n; i++)
        out[i] = ring_.read((head_.read() + i) % num_);
    head_.write((head_.read() + n) % num_);
    count_.write(count_.read() - n);
}

void
FreeList::initRange(uint32_t first, uint32_t n)
{
    for (uint32_t i = 0; i < n; i++)
        ring_.write(i, static_cast<PhysReg>(first + i));
    head_.write(0);
    count_.write(n);
}

void
FreeList::freeGroup(const PhysReg *regs, uint32_t n)
{
    freeM();
    for (uint32_t i = 0; i < n; i++) {
        uint32_t end = (head_.read() + count_.read() + i) % num_;
        ring_.write(end, regs[i]);
    }
    count_.write(count_.read() + n);
}

void
FreeList::snapshot(uint8_t tag)
{
    snapshotM();
    snapHead_.write(tag, head_.read());
}

void
FreeList::snapshotAt(uint8_t tag, uint32_t alreadyAllocated)
{
    snapshotM();
    snapHead_.write(tag, (head_.read() + alreadyAllocated) % num_);
}

void
FreeList::rollback(uint8_t tag)
{
    rollbackM();
    uint32_t sh = snapHead_.read(tag);
    uint32_t reclaimed = (head_.read() + num_ - sh) % num_;
    head_.write(sh);
    count_.write(count_.read() + reclaimed);
}

void
FreeList::rebuild(const RenameTable &rt)
{
    rebuildM();
    bool live[256] = {};
    for (uint32_t i = 0; i < 32; i++)
        live[rt.committed(static_cast<uint8_t>(i))] = true;
    uint32_t n = 0;
    for (uint32_t r = 0; r < num_; r++) {
        if (!live[r])
            ring_.write(n++, static_cast<PhysReg>(r));
    }
    head_.write(0);
    count_.write(n);
}

// ------------------------------------------------------------------ Bypass

Bypass::Bypass(Kernel &k, const std::string &name, uint32_t ports)
    : Module(k, name, Conflict::CF),
      setM(method("set")), getM(method("get")),
      slots_(k, name + ".slots", ports)
{
    selfCf(setM); // distinct ports by construction
    selfCf(getM);
    lt(setM, getM); // paper: set < get
}

void
Bypass::set(uint32_t port, PhysReg pd, uint64_t val)
{
    setM();
    slots_.write(port, {kernel().cycleCount(), pd, val});
}

bool
Bypass::get(PhysReg ps, uint64_t &val) const
{
    getM();
    uint64_t now = kernel().cycleCount();
    for (uint32_t i = 0; i < slots_.size(); i++) {
        const Slot &s = slots_.read(i);
        if (s.cycle == now && s.pd == ps) {
            val = s.val;
            return true;
        }
    }
    return false;
}

} // namespace riscy
