/**
 * @file
 * GroupFifo<T>: a FIFO with superscalar enq/deq group ports, used for
 * the fetch-to-rename instruction queue. Wrong-path entries are
 * filtered by epoch at rename, so no kill support is needed here.
 */
#pragma once

#include "core/cmd.hh"

namespace riscy {

template <typename T>
class GroupFifo : public cmd::Module
{
  public:
    GroupFifo(cmd::Kernel &k, const std::string &name, uint32_t capacity)
        : Module(k, name, cmd::Conflict::CF),
          enqM(method("enqGroup")), deqM(method("deqN")),
          cap_(capacity), arr_(k, name + ".arr", capacity),
          head_(k, name + ".head", 0), tail_(k, name + ".tail", 0),
          count_(k, name + ".count", 0)
    {
        lt(deqM, enqM);
        setCm(enqM, enqM, cmd::Conflict::C);
        setCm(deqM, deqM, cmd::Conflict::C);
    }

    // ---- probes
    uint32_t size() const { return count_.read(); }
    bool canEnq(uint32_t n) const { return count_.read() + n <= cap_; }
    /** The i-th oldest element (i < size()). */
    const T &
    peek(uint32_t i) const
    {
        return arr_.read((head_.read() + i) % cap_);
    }

    void
    enqGroup(const T *es, uint32_t n)
    {
        enqM();
        cmd::require(count_.read() + n <= cap_);
        for (uint32_t i = 0; i < n; i++)
            arr_.write((tail_.read() + i) % cap_, es[i]);
        tail_.write((tail_.read() + n) % cap_);
        count_.write(count_.read() + n);
    }

    void
    deqN(uint32_t n)
    {
        deqM();
        cmd::require(count_.read() >= n && n > 0);
        head_.write((head_.read() + n) % cap_);
        count_.write(count_.read() - n);
    }

    cmd::Method &enqM, &deqM;

  private:
    uint32_t cap_;
    cmd::RegArray<T> arr_;
    cmd::Reg<uint32_t> head_, tail_, count_;
};

} // namespace riscy
