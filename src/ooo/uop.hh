/**
 * @file
 * The micro-op record threaded through the OOO pipeline, and the small
 * shared typedefs of the execution engine.
 */
#pragma once

#include <cstdint>

#include "isa/inst.hh"

namespace riscy {

using PhysReg = uint8_t;
using RobIdx = uint8_t;
using SpecMask = uint16_t;

/** A micro-op as it flows from fetch to commit. */
struct Uop {
    uint64_t pc = 0;
    uint64_t predNext = 0; ///< front-end's predicted next PC
    isa::Inst inst;
    uint8_t epoch = 0;     ///< fetch epoch (wrong-path filtering)
    uint16_t ghist = 0;    ///< global-history snapshot for the predictor

    /**
     * Stable per-core trace sequence id (obs::PipelineTracer); 0 when
     * the uop is untraced. Assigned at rename — only when pipeline
     * tracing is enabled, so untraced runs keep bit-identical state
     * snapshots with pre-tracing builds.
     */
    uint64_t seq = 0;
    /// cycle the fetch request for this uop was issued (doFetch1)
    uint64_t fetchCycle = 0;
    /// cycle the uop entered the instruction queue (doFetch3)
    uint64_t decodeCycle = 0;

    // Filled at rename:
    PhysReg ps1 = 0, ps2 = 0, pd = 0, stalePd = 0;
    bool hasPd = false;
    RobIdx rob = 0;
    uint8_t lsqIdx = 0;
    SpecMask specMask = 0; ///< older branches this uop depends on
    uint8_t specTag = 0;   ///< own tag (branches/JALR only)
    bool hasSpecTag = false;

    // Early-detected exception (fetch page fault / illegal opcode):
    bool preException = false;
    uint8_t preCause = 0;

    // Filled at register read:
    uint64_t a = 0, b = 0;
};

} // namespace riscy
