#include "ooo/rob.hh"

#include <cstdio>
#include <cstdlib>

namespace riscy {

using namespace cmd;

namespace {
bool
kTraceRob()
{
    static const bool on = std::getenv("RISCY_TRACE") != nullptr;
    return on;
}
} // namespace

Rob::Rob(Kernel &k, const std::string &name, uint32_t size)
    : Module(k, name, Conflict::CF),
      enqM(method("enqGroup")), deqM(method("deqGroup")),
      markDoneM(method("markDone")),
      setAfterTranslationM(method("setAfterTranslation")),
      setAtLSQDeqM(method("setAtLSQDeq")),
      setAtCommitSentM(method("setAtCommitSent")),
      wrongSpecM(method("wrongSpec")), correctSpecM(method("correctSpec")),
      clearM(method("clearAll")),
      size_(size), arr_(k, name + ".arr", size),
      head_(k, name + ".head", 0), tail_(k, name + ".tail", 0),
      count_(k, name + ".count", 0)
{
    // Intra-cycle ordering: commit < kill < rename, with the
    // execute-side completion writes before the kill so an entry is
    // never marked after it has been killed and possibly recycled:
    //   markDone/setAfterTranslation/setAtLSQDeq < wrongSpec < enq,
    //   deq (commit) < wrongSpec.
    lt(deqM, enqM);
    lt(deqM, wrongSpecM);
    lt(markDoneM, wrongSpecM);
    lt(setAfterTranslationM, wrongSpecM);
    lt(setAtLSQDeqM, wrongSpecM);
    lt(wrongSpecM, enqM);
    selfCf(markDoneM);
    selfCf(setAfterTranslationM);
    selfCf(wrongSpecM);
    selfCf(correctSpecM);
    setCm(clearM, enqM, Conflict::C);
    setCm(clearM, deqM, Conflict::C);
}

void
Rob::enqGroup(const RobEntry *es, uint32_t n)
{
    enqM();
    require(count_.read() + n <= size_);
    for (uint32_t i = 0; i < n; i++) {
        RobEntry e = es[i];
        e.valid = true;
        arr_.write((tail_.read() + i) % size_, e);
    }
    tail_.write((tail_.read() + n) % size_);
    count_.write(count_.read() + n);
}

void
Rob::deqGroup(uint32_t n)
{
    deqM();
    require(count_.read() >= n);
    for (uint32_t i = 0; i < n; i++)
        arr_.write((head_.read() + i) % size_, RobEntry{});
    head_.write((head_.read() + n) % size_);
    count_.write(count_.read() - n);
}

void
Rob::markDone(RobIdx i)
{
    markDoneM();
    RobEntry e = arr_.read(i);
    if (!e.valid)
        panic("%s: markDone on invalid entry %u", name().c_str(), i);
    e.done = true;
    arr_.write(i, e);
}

void
Rob::setAfterTranslation(RobIdx i, bool mmio, bool exception,
                         uint8_t cause, uint64_t tval, bool done)
{
    setAfterTranslationM();
    RobEntry e = arr_.read(i);
    if (!e.valid)
        panic("%s: setAfterTranslation on invalid entry %u",
              name().c_str(), i);
    e.isMmio = mmio;
    if (exception) {
        e.exception = true;
        e.cause = cause;
        e.tval = tval;
        e.done = true;
    } else if (done) {
        e.done = true;
    }
    arr_.write(i, e);
}

void
Rob::setAtLSQDeq(RobIdx i, bool killed, bool exception, uint8_t cause,
                 uint64_t tval)
{
    setAtLSQDeqM();
    RobEntry e = arr_.read(i);
    if (!e.valid)
        panic("%s: setAtLSQDeq on invalid entry %u", name().c_str(), i);
    e.done = true;
    e.ldKilled = killed;
    if (exception) {
        e.exception = true;
        e.cause = cause;
        e.tval = tval;
    }
    arr_.write(i, e);
}

void
Rob::setAtCommitSent(RobIdx i)
{
    setAtCommitSentM();
    RobEntry e = arr_.read(i);
    e.atCommitSent = true;
    arr_.write(i, e);
}

void
Rob::wrongSpec(SpecMask deadMask)
{
    wrongSpecM();
    // Killed entries are always a suffix (younger than the branch).
    uint32_t newCount = 0;
    for (uint32_t n = 0; n < count_.read(); n++) {
        uint32_t i = (head_.read() + n) % size_;
        RobEntry e = arr_.read(i);
        if (e.specMask & deadMask) {
            if (kTraceRob()) {
                fprintf(stderr, "  robKill pc=%llx mask=%x idx=%u\n",
                        (unsigned long long)e.pc, e.specMask, i);
            }
            arr_.write(i, RobEntry{});
        } else {
            if (newCount != n)
                panic("%s: wrongSpec kill set is not a suffix",
                      name().c_str());
            newCount = n + 1;
        }
    }
    tail_.write((head_.read() + newCount) % size_);
    count_.write(newCount);
}

void
Rob::correctSpec(SpecMask mask)
{
    correctSpecM();
    for (uint32_t n = 0; n < count_.read(); n++) {
        uint32_t i = (head_.read() + n) % size_;
        RobEntry e = arr_.read(i);
        if (e.specMask & mask) {
            e.specMask &= ~mask;
            arr_.write(i, e);
        }
    }
}

void
Rob::clearAll()
{
    clearM();
    for (uint32_t n = 0; n < count_.read(); n++)
        arr_.write((head_.read() + n) % size_, RobEntry{});
    head_.write(0);
    tail_.write(0);
    count_.write(0);
}

} // namespace riscy
