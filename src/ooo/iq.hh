/**
 * @file
 * Instruction issue queue (paper Section IV). One IQ feeds each
 * execution pipeline; entries track the readiness of both source
 * operands, woken by the execute/write-back rules.
 *
 * The conflict matrix realizes the paper's preferred ordering
 * (Section IV-D): wakeup < issue < enter, which lets doRegWrite /
 * doExec, doIssue, and doRename all fire in one cycle with an
 * instruction being woken and issued in the same cycle. An
 * alternative ordering (issue < wakeup < enter) can be selected to
 * reproduce the paper's one-extra-cycle design point (the ablation
 * benchmark measures the difference).
 */
#pragma once

#include "core/cmd.hh"
#include "ooo/uop.hh"

namespace riscy {

class IssueQueue : public cmd::Module
{
  public:
    /** Which legal CM ordering to build (see file header). */
    enum class Ordering {
        WakeupIssueEnter, ///< wakeup < issue < enter (fast)
        IssueWakeupEnter, ///< issue < wakeup < enter (one cycle slower)
    };

    IssueQueue(cmd::Kernel &k, const std::string &name, uint32_t size,
               Ordering order = Ordering::WakeupIssueEnter);

    // ---- probes
    bool canEnter() const { return count_.read() < size_; }
    bool canIssue() const { return findReady() >= 0; }
    uint32_t size() const { return count_.read(); }

    /** Insert a renamed instruction with its source-ready bits. */
    void enter(const Uop &u, bool rdy1, bool rdy2);
    /** Set the ready bit of every source waiting on @p pd. */
    void wakeup(PhysReg pd);
    /** Remove and return the oldest fully ready instruction. */
    Uop issue();
    void wrongSpec(SpecMask deadMask);
    void correctSpec(SpecMask mask);
    void clearAll();

    cmd::Method &enterM, &wakeupM, &issueM, &wrongSpecM, &correctSpecM,
        &clearM;

  private:
    struct Entry {
        bool valid = false;
        Uop uop;
        bool rdy1 = false, rdy2 = false;
        uint64_t age = 0;
    };

    int findReady() const;

    uint32_t size_;
    cmd::RegArray<Entry> arr_;
    cmd::Reg<uint32_t> count_;
    cmd::Reg<uint64_t> nextAge_;
};

} // namespace riscy
