/**
 * @file
 * Reorder buffer (paper Section V-A). Keeps all in-flight renamed
 * instructions in program order; carries per-entry speculation masks,
 * completion and exception state, and the load-kill flag the LSQ sets
 * through setAtLSQDeq. Superscalar insert/commit is expressed as
 * group methods (enqGroup/deqGroup) as the hardware's 2-way ports.
 */
#pragma once

#include "core/cmd.hh"
#include "ooo/uop.hh"

namespace riscy {

struct RobEntry {
    bool valid = false;
    uint64_t pc = 0;
    isa::Inst inst;
    PhysReg pd = 0, stalePd = 0;
    bool hasPd = false;
    uint8_t lsqIdx = 0;
    SpecMask specMask = 0;
    uint8_t specTag = 0;
    bool hasSpecTag = false;
    bool done = false;
    bool exception = false;
    uint8_t cause = 0;
    uint64_t tval = 0;
    bool ldKilled = false;  ///< memory-order violation: flush at commit
    bool isMmio = false;    ///< non-speculative access at commit
    bool atCommitSent = false;
    /// fetch cycle of the instruction (fetch-to-commit latency stat)
    uint64_t fetchCycle = 0;
};

class Rob : public cmd::Module
{
  public:
    Rob(cmd::Kernel &k, const std::string &name, uint32_t size);

    uint32_t size() const { return size_; }

    // ---- probes
    bool canEnq(uint32_t n) const { return count_.read() + n <= size_; }
    bool empty() const { return count_.read() == 0; }
    uint32_t count() const { return count_.read(); }
    /** Index the i-th enqueued entry will occupy (paper getEnqIndex). */
    RobIdx
    enqIndex(uint32_t i) const
    {
        return static_cast<RobIdx>((tail_.read() + i) % size_);
    }
    bool frontValid() const { return count_.read() > 0; }
    RobIdx frontIdx() const { return static_cast<RobIdx>(head_.read()); }
    const RobEntry &front() const { return arr_.read(head_.read()); }
    /** Entry after the head (for 2-way commit). */
    const RobEntry &
    second() const
    {
        return arr_.read((head_.read() + 1) % size_);
    }
    bool hasSecond() const { return count_.read() > 1; }
    const RobEntry &entry(RobIdx i) const { return arr_.read(i); }

    // ---- interface methods
    /** Insert up to two renamed instructions (guarded on space). */
    void enqGroup(const RobEntry *es, uint32_t n);
    /** Retire the oldest @p n instructions (commit). */
    void deqGroup(uint32_t n);
    /** Mark an instruction complete (paper setNonMemCompleted). */
    void markDone(RobIdx i);
    /** Record what translation discovered (paper setAfterTranslation). */
    void setAfterTranslation(RobIdx i, bool mmio, bool exception,
                             uint8_t cause, uint64_t tval, bool markDone);
    /** Final load status from the LSQ (paper setAtLSQDeq). */
    void setAtLSQDeq(RobIdx i, bool killed, bool exception, uint8_t cause,
                     uint64_t tval);
    /** Remember that the commit-time action was already launched. */
    void setAtCommitSent(RobIdx i);
    /** Kill every entry whose mask intersects @p deadMask. */
    void wrongSpec(SpecMask deadMask);
    /** Clear @p mask bits from every entry. */
    void correctSpec(SpecMask mask);
    /** Commit-time flush. */
    void clearAll();

    cmd::Method &enqM, &deqM, &markDoneM, &setAfterTranslationM,
        &setAtLSQDeqM, &setAtCommitSentM, &wrongSpecM, &correctSpecM,
        &clearM;

  private:
    uint32_t size_;
    cmd::RegArray<RobEntry> arr_;
    cmd::Reg<uint32_t> head_, tail_, count_;
};

} // namespace riscy
