/**
 * @file
 * SpecFifo<T>: a FIFO whose occupants are speculative instructions.
 *
 * Implements the paper's rule that "every module that keeps
 * speculation-related instructions must keep speculation masks and
 * provide a correctSpec method to clear bits from speculation masks,
 * and a wrongSpec method to kill instructions". Used for pipeline
 * stage latches between issue/reg-read/execute/write-back and for the
 * various pending queues of the load-store unit.
 *
 * T must expose a `specMask` field.
 *
 * Concurrency note: wrongSpec/correctSpec are declared conflict-free
 * against enq/deq. In this engine rules execute sequentially within a
 * cycle, and the kill discipline (one atomic rule calls wrongSpec on
 * *every* holder of speculative state) makes either interleaving
 * correct: an entry moved before the kill is killed at its new home,
 * and an entry enqueued after the kill was renamed against the
 * rolled-back state (and dies by epoch filtering if it was stale).
 * This plays the role of the EHR-based CM transformations RiscyOO
 * applies to the same modules.
 */
#pragma once

#include "core/cmd.hh"
#include "ooo/uop.hh"

namespace riscy {

template <typename T>
class SpecFifo : public cmd::Module
{
  public:
    SpecFifo(cmd::Kernel &k, const std::string &name, uint32_t capacity)
        : Module(k, name, cmd::Conflict::CF),
          enqM(method("enq")), deqM(method("deq")), firstM(method("first")),
          wrongSpecM(method("wrongSpec")),
          correctSpecM(method("correctSpec")), clearM(method("clear")),
          cap_(capacity), slots_(k, name + ".slots", capacity),
          head_(k, name + ".head", 0), tail_(k, name + ".tail", 0),
          count_(k, name + ".count", 0)
    {
        // Single enq/deq port; peek before consume.
        setCm(enqM, enqM, cmd::Conflict::C);
        setCm(deqM, deqM, cmd::Conflict::C);
        lt(deqM, enqM);
        lt(firstM, deqM);
        lt(firstM, enqM);
        selfCf(firstM);
        selfCf(wrongSpecM);
        selfCf(correctSpecM);
        lt(wrongSpecM, enqM);
        // Flush conflicts with everything (the default C would apply,
        // but the module default is CF, so declare it).
        for (const cmd::Method *m :
             {&enqM, &deqM, &firstM, &wrongSpecM, &correctSpecM})
            setCm(clearM, *m, cmd::Conflict::C);

        // Lazily reclaim slots whose occupant was killed.
        k.rule(name + ".compact", [this] {
            cmd::require(count_.read() > 0 &&
                         !slots_.read(head_.read()).valid);
            head_.write(next(head_.read()));
            count_.write(count_.read() - 1);
        }).when([this] {
            return count_.read() > 0 && !slots_.read(head_.read()).valid;
        });
    }

    // ---- probes
    bool canEnq() const { return count_.read() < cap_; }
    bool
    canDeq() const
    {
        return findFirst() >= 0;
    }
    bool empty() const { return findFirst() < 0; }
    uint32_t size() const { return count_.read(); }

    void
    enq(const T &v)
    {
        enqM();
        cmd::require(count_.read() < cap_);
        slots_.write(tail_.read(), {v, true});
        tail_.write(next(tail_.read()));
        count_.write(count_.read() + 1);
    }

    T
    first()
    {
        firstM();
        int i = findFirst();
        cmd::require(i >= 0);
        return slots_.read(i).t;
    }

    T
    deq()
    {
        deqM();
        int i = findFirst();
        cmd::require(i >= 0);
        Slot s = slots_.read(i);
        // Free everything from head through i.
        uint32_t freed = 0;
        uint32_t h = head_.read();
        while (true) {
            freed++;
            bool last = static_cast<int>(h) == i;
            h = next(h);
            if (last)
                break;
        }
        // Mark the consumed slot invalid (skipped slots already were).
        slots_.write(i, Slot{});
        head_.write(h);
        count_.write(count_.read() - freed);
        return s.t;
    }

    /** Kill every occupant whose specMask contains @p tagBit. */
    void
    wrongSpec(SpecMask tagBit)
    {
        wrongSpecM();
        for (uint32_t n = 0, i = head_.read(); n < count_.read();
             n++, i = next(i)) {
            Slot s = slots_.read(i);
            if (s.valid && (s.t.specMask & tagBit))
                slots_.write(i, Slot{});
        }
    }

    /** Clear @p tagBit from every occupant's mask. */
    void
    correctSpec(SpecMask tagBit)
    {
        correctSpecM();
        for (uint32_t n = 0, i = head_.read(); n < count_.read();
             n++, i = next(i)) {
            Slot s = slots_.read(i);
            if (s.valid && (s.t.specMask & tagBit)) {
                s.t.specMask &= ~tagBit;
                slots_.write(i, s);
            }
        }
    }

    /** Drop everything (commit-time flush). */
    void
    clear()
    {
        clearM();
        for (uint32_t n = 0, i = head_.read(); n < count_.read();
             n++, i = next(i)) {
            if (slots_.read(i).valid)
                slots_.write(i, Slot{});
        }
        head_.write(0);
        tail_.write(0);
        count_.write(0);
    }

    cmd::Method &enqM, &deqM, &firstM, &wrongSpecM, &correctSpecM, &clearM;

  private:
    struct Slot {
        T t{};
        bool valid = false;
    };

    uint32_t next(uint32_t i) const { return i + 1 == cap_ ? 0 : i + 1; }

    int
    findFirst() const
    {
        for (uint32_t n = 0, i = head_.read(); n < count_.read();
             n++, i = next(i)) {
            if (slots_.read(i).valid)
                return static_cast<int>(i);
        }
        return -1;
    }

    uint32_t cap_;
    cmd::RegArray<Slot> slots_;
    cmd::Reg<uint32_t> head_, tail_, count_;
};

} // namespace riscy
