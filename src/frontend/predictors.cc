#include "frontend/predictors.hh"

namespace riscy {

using namespace cmd;

// -------------------------------------------------------------------- Btb

Btb::Btb(Kernel &k, const std::string &name, uint32_t entries)
    : Module(k, name, Conflict::CF),
      predictM(method("predict")), updateM(method("update")),
      entries_(entries), arr_(k, name + ".arr", entries)
{
    selfCf(predictM);
    selfCf(updateM); // both ALU pipes may resolve branches in a cycle
}

uint64_t
Btb::predict(uint64_t pc) const
{
    predictM();
    const Entry &e = arr_.read(idx(pc));
    return (e.valid && e.pc == pc) ? e.target : 0;
}

void
Btb::update(uint64_t pc, uint64_t target, bool taken)
{
    updateM();
    if (taken) {
        arr_.write(idx(pc), {true, pc, target});
    } else {
        const Entry &e = arr_.read(idx(pc));
        if (e.valid && e.pc == pc)
            arr_.write(idx(pc), Entry{});
    }
}

// ---------------------------------------------------------- TournamentBp

TournamentBp::TournamentBp(Kernel &k, const std::string &name)
    : Module(k, name, Conflict::CF),
      predictM(method("predict")), updateM(method("update")),
      localHist_(k, name + ".lhist", kLocal, 0),
      localCtr_(k, name + ".lctr", kLocal, 3),
      globalCtr_(k, name + ".gctr", kGlobal, 1),
      choiceCtr_(k, name + ".cctr", kGlobal, 1)
{
    selfCf(predictM);
    selfCf(updateM);
}

bool
TournamentBp::predict(uint64_t pc, uint16_t ghist) const
{
    predictM();
    uint16_t lh = localHist_.read(li(pc));
    bool localTaken = localCtr_.read(lh & (kLocal - 1)) >= 4;
    bool globalTaken = globalCtr_.read(gi(ghist)) >= 2;
    bool useGlobal = choiceCtr_.read(gi(ghist)) >= 2;
    return useGlobal ? globalTaken : localTaken;
}

void
TournamentBp::update(uint64_t pc, uint16_t ghist, bool taken)
{
    updateM();
    uint16_t lh = localHist_.read(li(pc));
    uint32_t lci = lh & (kLocal - 1);
    uint8_t lc = localCtr_.read(lci);
    uint8_t gc = globalCtr_.read(gi(ghist));
    bool localTaken = lc >= 4;
    bool globalTaken = gc >= 2;

    // Choice: trained toward whichever component was right.
    if (localTaken != globalTaken) {
        uint8_t ch = choiceCtr_.read(gi(ghist));
        if (globalTaken == taken && ch < 3)
            choiceCtr_.write(gi(ghist), ch + 1);
        else if (localTaken == taken && ch > 0)
            choiceCtr_.write(gi(ghist), ch - 1);
    }

    localCtr_.write(lci, taken ? (lc < 7 ? lc + 1 : 7)
                               : (lc > 0 ? lc - 1 : 0));
    globalCtr_.write(gi(ghist), taken ? (gc < 3 ? gc + 1 : 3)
                                      : (gc > 0 ? gc - 1 : 0));
    localHist_.write(li(pc), static_cast<uint16_t>((lh << 1) | taken) &
                                 0x3ff);
}

// -------------------------------------------------------------------- Ras

Ras::Ras(Kernel &k, const std::string &name, uint32_t entries)
    : Module(k, name, Conflict::CF),
      pushM(method("push")), popM(method("pop")),
      entries_(entries), stack_(k, name + ".stack", entries, 0),
      sp_(k, name + ".sp", 0), depth_(k, name + ".depth", 0)
{
}

void
Ras::push(uint64_t retAddr)
{
    pushM();
    stack_.write(sp_.read(), retAddr);
    sp_.write((sp_.read() + 1) % entries_);
    if (depth_.read() < entries_)
        depth_.write(depth_.read() + 1);
}

uint64_t
Ras::pop()
{
    popM();
    if (depth_.read() == 0)
        return 0;
    uint32_t p = (sp_.read() + entries_ - 1) % entries_;
    sp_.write(p);
    depth_.write(depth_.read() - 1);
    return stack_.read(p);
}

uint64_t
Ras::top() const
{
    if (depth_.read() == 0)
        return 0;
    return stack_.read((sp_.read() + entries_ - 1) % entries_);
}

// ------------------------------------------------------------ EpochManager

EpochManager::EpochManager(Kernel &k, const std::string &name)
    : Module(k, name, Conflict::CF),
      redirectM(method("redirect")), resteerM(method("resteer")),
      setFetchPcM(method("setFetchPc")),
      fetchEpoch_(k, name + ".fetchEpoch", 0),
      renameEpoch_(k, name + ".renameEpoch", 0),
      fetchPc_(k, name + ".pc", 0),
      lastRedirect_(k, name + ".lastRedirect", ~0ull)
{
    // A redirect never loses to the fetch rule's own PC advance:
    // setFetchPc is skipped in a cycle that redirected (whichever
    // order the two fired in), and the fetch rule stalls one cycle.
    selfCf(redirectM); // two same-cycle mispredicts: the older (last
                       // in schedule order) wins the fetch PC
}

bool
EpochManager::redirectedThisCycle() const
{
    return lastRedirect_.read() == kernel().cycleCount();
}

void
EpochManager::redirect(uint64_t pc)
{
    redirectM();
    fetchEpoch_.write(fetchEpoch_.read() + 1);
    renameEpoch_.write(renameEpoch_.read() + 1);
    fetchPc_.write(pc);
    lastRedirect_.write(kernel().cycleCount());
}

void
EpochManager::resteer(uint64_t pc)
{
    resteerM();
    fetchEpoch_.write(fetchEpoch_.read() + 1);
    fetchPc_.write(pc);
    lastRedirect_.write(kernel().cycleCount());
}

void
EpochManager::setFetchPc(uint64_t pc)
{
    setFetchPcM();
    if (redirectedThisCycle())
        return;
    fetchPc_.write(pc);
}

} // namespace riscy
