/**
 * @file
 * Front-end predictors: direct-mapped BTB, Alpha-21264-style
 * tournament direction predictor, return address stack, and the epoch
 * manager used to discard wrong-path fetches (paper Fig. 9).
 *
 * Prediction/update are value/action methods on CMD modules; the
 * fetch and execute rules compose them. All methods are declared
 * conflict-free against each other except where a real port conflict
 * exists — predictors are read-predict / write-update structures and
 * the rare same-cycle same-entry update races are benign (documented
 * in the paper's sense: less concurrency never breaks correctness).
 */
#pragma once

#include "core/cmd.hh"
#include "mem/memory.hh"

namespace riscy {

/** 256-entry direct-mapped branch target buffer. */
class Btb : public cmd::Module
{
  public:
    Btb(cmd::Kernel &k, const std::string &name, uint32_t entries = 256);

    /** Predicted target of a taken control transfer at @p pc (0 if none). */
    uint64_t predict(uint64_t pc) const;
    /** Install/refresh the mapping pc -> target. */
    void update(uint64_t pc, uint64_t target, bool taken);

    cmd::Method &predictM, &updateM;

  private:
    struct Entry {
        bool valid = false;
        uint64_t pc = 0;
        uint64_t target = 0;
    };

    uint32_t idx(uint64_t pc) const { return (pc >> 2) & (entries_ - 1); }

    uint32_t entries_;
    cmd::RegArray<Entry> arr_;
};

/**
 * Tournament predictor (local + global + choice), after the Alpha
 * 21264 [47]: 1K x 10-bit local histories into 1K 3-bit counters,
 * 4K 2-bit global counters, 4K 2-bit choice counters.
 */
class TournamentBp : public cmd::Module
{
  public:
    TournamentBp(cmd::Kernel &k, const std::string &name);

    /** Direction prediction for branch at @p pc under history @p ghist. */
    bool predict(uint64_t pc, uint16_t ghist) const;
    /** Train on a resolved branch. */
    void update(uint64_t pc, uint16_t ghist, bool taken);

    cmd::Method &predictM, &updateM;

  private:
    static constexpr uint32_t kLocal = 1024;
    static constexpr uint32_t kGlobal = 4096;

    uint32_t li(uint64_t pc) const { return (pc >> 2) & (kLocal - 1); }
    uint32_t gi(uint16_t gh) const { return gh & (kGlobal - 1); }

    cmd::RegArray<uint16_t> localHist_;
    cmd::RegArray<uint8_t> localCtr_; ///< 3-bit
    cmd::RegArray<uint8_t> globalCtr_; ///< 2-bit
    cmd::RegArray<uint8_t> choiceCtr_; ///< 2-bit, 1 = prefer global
};

/** 8-entry return address stack. */
class Ras : public cmd::Module
{
  public:
    Ras(cmd::Kernel &k, const std::string &name, uint32_t entries = 8);

    void push(uint64_t retAddr);
    /** Pop and return the predicted return target (0 if empty). */
    uint64_t pop();
    uint64_t top() const;

    cmd::Method &pushM, &popM;

  private:
    uint32_t entries_;
    cmd::RegArray<uint64_t> stack_;
    cmd::Reg<uint32_t> sp_;
    cmd::Reg<uint32_t> depth_;
};

/**
 * Epoch manager with the classic two-level scheme:
 *
 *  - the *fetch* epoch distinguishes in-flight fetches (f2q/f3q)
 *    issued before a redirect from those after; it is bumped by both
 *    front-end re-steers and execute/commit redirects.
 *  - the *rename* epoch invalidates decoded-but-not-renamed uops
 *    (the instruction queue); it is bumped ONLY by execute/commit
 *    redirects. A front-end re-steer discovers that the *next* fetch
 *    address was wrong — the already-decoded older instructions are
 *    still correct-path and must not be dropped.
 */
class EpochManager : public cmd::Module
{
  public:
    EpochManager(cmd::Kernel &k, const std::string &name);

    uint8_t current() const { return fetchEpoch_.read(); }
    uint8_t renameEpoch() const { return renameEpoch_.read(); }
    bool isStale(uint8_t e) const { return e != fetchEpoch_.read(); }
    bool
    isStaleRename(uint8_t e) const
    {
        return e != renameEpoch_.read();
    }
    /** True if some rule already redirected fetch this cycle. */
    bool redirectedThisCycle() const;
    /** Full redirect (mispredict/flush): bumps both epochs. */
    void redirect(uint64_t pc);
    /** Front-end re-steer: bumps only the fetch epoch. */
    void resteer(uint64_t pc);
    /** Consumed by the fetch rule: where to fetch next. */
    uint64_t fetchPc() const { return fetchPc_.read(); }
    void setFetchPc(uint64_t pc);

    cmd::Method &redirectM, &resteerM, &setFetchPcM;

  private:
    cmd::Reg<uint8_t> fetchEpoch_;
    cmd::Reg<uint8_t> renameEpoch_;
    cmd::Reg<uint64_t> fetchPc_;
    cmd::Reg<uint64_t> lastRedirect_;
};

} // namespace riscy
