/**
 * @file
 * Server workload: an open-loop key-value service.
 *
 * KvHost is the host-side traffic generator and measurement harness —
 * the "load generator box" next to the simulated server. At
 * construction it precomputes a deterministic, seeded arrival schedule
 * (Poisson or uniform interarrivals at a configured aggregate offered
 * load, Zipf key popularity, GET/PUT mix), split round-robin into
 * per-hart queues. The cores run emitKvWorker(): each worker polls its
 * own KvPop MMIO register, serves the request against an in-memory
 * hash table preloaded into simulated DRAM by preloadKvTable(), and
 * acknowledges through KvDone — which timestamps the completion.
 *
 * Open loop means arrivals do not wait for service: a request's
 * sojourn time (completion - arrival) includes the queueing delay
 * that builds up when the offered load approaches saturation, which
 * is exactly the tail-latency effect the ablation sweeps for.
 *
 * Determinism: the schedule is a pure function of the config (no
 * std::*_distribution, whose sequences are implementation-defined);
 * pop()/done() touch only per-hart queues and per-request slots owned
 * by that hart, so concurrent MMIO from per-core domains under the
 * parallel scheduler is race-free and scheduler-independent.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "asmkit/assembler.hh"
#include "mem/memory.hh"

namespace riscy::server {

/** Multiplicative hash spreading keys over table slots (odd, so the
 *  map is injective on the low slot-index bits). */
constexpr uint64_t kKvHashMul = 0x9E3779B97F4A7C15ull;
/** Value stored for a key is key * kKvValMul — PUTs rewrite the same
 *  value, so GETs can verify against it regardless of request order. */
constexpr uint64_t kKvValMul = 0x2545F4914F6CDD1Dull;

struct KvConfig {
    uint32_t harts = 1;     ///< worker cores (one queue each)
    uint64_t seed = 1;      ///< arrival-schedule seed
    uint32_t requests = 2000;     ///< total requests generated
    double reqPerKilocycle = 5.0; ///< aggregate offered load
    bool poisson = true;    ///< exponential interarrivals (else uniform)
    uint32_t keys = 4096;   ///< key space (power of two)
    double zipf = 0.8;      ///< popularity skew exponent (0 = uniform)
    double putFrac = 0.1;   ///< fraction of PUTs
    uint64_t startCycle = 2000;   ///< warmup before the first arrival
    Addr tableBase = kDramBase + 0x100000; ///< hash table in DRAM
    uint32_t tableSlots = 8192;   ///< 16 B slots (power of two >= keys)
};

/** Aggregate results over the completed requests. */
struct KvSummary {
    uint64_t offered = 0;   ///< requests generated
    uint64_t completed = 0; ///< requests acknowledged via KvDone
    uint64_t windowCycles = 0;    ///< first arrival .. last completion
    double throughputPerKc = 0.0; ///< completed per 1000 cycles
    /** Sojourn-time (completion - arrival) percentiles, in cycles. */
    uint64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0, maxLat = 0;
    double meanLat = 0.0;
    /** Backlog (arrived, unserved) observed at each pop. */
    double meanQueueDepth = 0.0;
    uint64_t maxQueueDepth = 0;
};

class KvHost : public KvTraffic
{
  public:
    struct Req {
        uint64_t arrival = 0;    ///< injection cycle (precomputed)
        uint32_t key = 0;
        bool put = false;
        uint32_t hart = 0;
        uint64_t popped = 0;     ///< service-start cycle (0 = not yet)
        uint64_t completion = 0; ///< KvDone cycle (0 = outstanding)
    };

    explicit KvHost(const KvConfig &cfg);

    uint64_t pop(uint32_t hart, uint64_t now) override;
    void done(uint32_t hart, uint64_t reqId, uint64_t now) override;

    const KvConfig &config() const { return cfg_; }
    const std::vector<Req> &requests() const { return reqs_; }
    KvSummary summarize() const;

  private:
    KvConfig cfg_;
    std::vector<Req> reqs_;
    std::vector<std::vector<uint32_t>> q_; ///< per-hart reqIds, by arrival
    std::vector<uint32_t> head_;           ///< per-hart next unpopped
    std::vector<uint64_t> depthSum_, depthSamples_, depthMax_;
};

/** Preload the hash table image (every key resident, linear-probe
 *  placement matching the worker's lookup) into simulated memory. */
void preloadKvTable(PhysMem &mem, const KvConfig &cfg);

/** Emit the per-hart worker loop: poll KvPop, probe the table, verify
 *  GETs / apply PUTs, acknowledge via KvDone; exit 0 on the stop
 *  descriptor (non-zero exit codes signal a corrupted table). */
void emitKvWorker(asmkit::Assembler &a, const KvConfig &cfg);

} // namespace riscy::server
