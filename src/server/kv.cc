#include "server/kv.hh"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/cmd.hh"

namespace riscy::server {

using namespace asmkit;

KvHost::KvHost(const KvConfig &cfg)
    : cfg_(cfg), q_(cfg.harts), head_(cfg.harts, 0),
      depthSum_(cfg.harts, 0), depthSamples_(cfg.harts, 0),
      depthMax_(cfg.harts, 0)
{
    if (cfg.harts == 0 || (cfg.keys & (cfg.keys - 1)) != 0 ||
        (cfg.tableSlots & (cfg.tableSlots - 1)) != 0 ||
        cfg.tableSlots < cfg.keys)
        cmd::fatal("KvHost: bad geometry (keys %u, slots %u, harts %u)",
                   cfg.keys, cfg.tableSlots, cfg.harts);
    if (cfg.requests >= (1u << 24))
        cmd::fatal("KvHost: reqId field is 24 bits (%u requests)",
                   cfg.requests);

    // mt19937_64 output is specified bit-for-bit by the standard; the
    // inverse-CDF transforms below avoid std::*_distribution, whose
    // sequences are implementation-defined.
    std::mt19937_64 rng(cfg.seed);
    auto u01 = [&] { // uniform in [0, 1)
        return double(rng() >> 11) * (1.0 / 9007199254740992.0);
    };

    // Zipf CDF over popularity ranks; rank -> key through an odd
    // multiplicative permutation so the hot keys are scattered over
    // the key space (and therefore over lines and L2 banks).
    std::vector<double> cdf(cfg.keys);
    double sum = 0.0;
    for (uint32_t k = 0; k < cfg.keys; k++) {
        sum += cfg.zipf == 0.0 ? 1.0
                               : 1.0 / std::pow(double(k + 1), cfg.zipf);
        cdf[k] = sum;
    }

    double mean = 1000.0 / cfg.reqPerKilocycle;
    double t = double(cfg.startCycle);
    reqs_.reserve(cfg.requests);
    for (uint32_t i = 0; i < cfg.requests; i++) {
        t += cfg.poisson ? -std::log(1.0 - u01()) * mean : mean;
        double u = u01() * sum;
        uint32_t rank = static_cast<uint32_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        rank = std::min(rank, cfg.keys - 1);
        Req r;
        r.arrival = static_cast<uint64_t>(t);
        r.key = (rank * 0x9E3779B1u) & (cfg.keys - 1);
        r.put = u01() < cfg.putFrac;
        r.hart = i % cfg.harts;
        q_[r.hart].push_back(i);
        reqs_.push_back(r);
    }
}

uint64_t
KvHost::pop(uint32_t hart, uint64_t now)
{
    std::vector<uint32_t> &q = q_[hart];
    uint32_t &h = head_[hart];
    if (h >= q.size())
        return 0x5; // valid | stop: schedule drained
    Req &r = reqs_[q[h]];
    if (r.arrival > now)
        return 0; // open loop: next request hasn't arrived yet
    // Backlog this hart sees right now (arrived but unserved),
    // including the request being popped.
    uint64_t depth = 0;
    for (uint32_t i = h; i < q.size() && reqs_[q[i]].arrival <= now; i++)
        depth++;
    depthSum_[hart] += depth;
    depthSamples_[hart]++;
    depthMax_[hart] = std::max(depthMax_[hart], depth);
    r.popped = now;
    uint64_t d = 1 | (r.put ? 2u : 0u) | (uint64_t(r.key) << 8) |
                 (uint64_t(q[h]) << 40);
    h++;
    return d;
}

void
KvHost::done(uint32_t hart, uint64_t reqId, uint64_t now)
{
    if (reqId >= reqs_.size() || reqs_[reqId].hart != hart) {
        cmd::warn("KvHost: bogus KvDone reqId %llu from hart %u",
                  (unsigned long long)reqId, hart);
        return;
    }
    reqs_[reqId].completion = now;
}

KvSummary
KvHost::summarize() const
{
    KvSummary s;
    s.offered = reqs_.size();
    std::vector<uint64_t> lat;
    uint64_t firstArrival = ~0ull, lastCompletion = 0;
    double latSum = 0.0;
    for (const Req &r : reqs_) {
        firstArrival = std::min(firstArrival, r.arrival);
        if (!r.completion)
            continue;
        s.completed++;
        lastCompletion = std::max(lastCompletion, r.completion);
        uint64_t l = r.completion - r.arrival;
        lat.push_back(l);
        latSum += double(l);
    }
    if (!s.completed)
        return s;
    std::sort(lat.begin(), lat.end());
    auto pct = [&](double p) {
        size_t i = static_cast<size_t>(p * double(lat.size() - 1));
        return lat[i];
    };
    s.p50 = pct(0.50);
    s.p95 = pct(0.95);
    s.p99 = pct(0.99);
    s.p999 = pct(0.999);
    s.maxLat = lat.back();
    s.meanLat = latSum / double(lat.size());
    s.windowCycles = lastCompletion - firstArrival;
    if (s.windowCycles)
        s.throughputPerKc =
            1000.0 * double(s.completed) / double(s.windowCycles);
    uint64_t dSum = 0, dSamples = 0;
    for (uint32_t i = 0; i < cfg_.harts; i++) {
        dSum += depthSum_[i];
        dSamples += depthSamples_[i];
        s.maxQueueDepth = std::max(s.maxQueueDepth, depthMax_[i]);
    }
    if (dSamples)
        s.meanQueueDepth = double(dSum) / double(dSamples);
    return s;
}

void
preloadKvTable(PhysMem &mem, const KvConfig &cfg)
{
    uint32_t mask = cfg.tableSlots - 1;
    for (uint32_t key = 0; key < cfg.keys; key++) {
        uint32_t idx = static_cast<uint32_t>(key * kKvHashMul) & mask;
        // Linear probe to the first free slot — the same walk the
        // worker performs, so placement and lookup always agree.
        while (mem.read(cfg.tableBase + uint64_t(idx) * 16, 8) != 0)
            idx = (idx + 1) & mask;
        Addr slot = cfg.tableBase + uint64_t(idx) * 16;
        mem.write(slot, uint64_t(key) + 1, 8);
        mem.write(slot + 8, uint64_t(key) * kKvValMul, 8);
    }
}

void
emitKvWorker(Assembler &a, const KvConfig &cfg)
{
    // Register map: s5 table base, s6 hash multiplier, s7 slot mask,
    // s8 value multiplier, t6 MMIO base; t0 descriptor, s3 key,
    // s4 reqId, t3 slot index, t4 slot address.
    a.li(s5, static_cast<int64_t>(cfg.tableBase));
    a.li(s6, static_cast<int64_t>(kKvHashMul));
    a.li(s7, static_cast<int64_t>(cfg.tableSlots - 1));
    a.li(s8, static_cast<int64_t>(kKvValMul));
    a.li(t6, static_cast<int64_t>(kMmioBase));
    auto poll = a.newLabel();
    auto probe = a.newLabel();
    auto found = a.newLabel();
    auto isput = a.newLabel();
    auto donereq = a.newLabel();
    auto stop = a.newLabel();

    a.bind(poll);
    a.ld(t0, static_cast<int32_t>(HostReg::KvPop), t6);
    a.beqz(t0, poll); // open loop: nothing arrived yet
    a.andi(t1, t0, 4);
    a.bnez(t1, stop);
    a.slli(s3, t0, 24); // key = descriptor bits 39..8
    a.srli(s3, s3, 32);
    a.srli(s4, t0, 40); // reqId = bits 63..40
    a.mul(t3, s3, s6);
    a.and_(t3, t3, s7);
    a.bind(probe);
    a.slli(t4, t3, 4);
    a.add(t4, t4, s5);
    a.ld(t5, 0, t4);
    a.addi(t2, s3, 1); // stored key tag is key+1 (0 = empty)
    a.beq(t5, t2, found);
    a.addi(t3, t3, 1);
    a.and_(t3, t3, s7);
    a.j(probe);
    a.bind(found);
    a.andi(t1, t0, 2);
    a.bnez(t1, isput);
    a.ld(t5, 8, t4); // GET: verify value == key * kKvValMul
    a.mul(t2, s3, s8);
    a.beq(t5, t2, donereq);
    a.sd(s3, static_cast<int32_t>(HostReg::Fail), t6);
    a.j(donereq);
    a.bind(isput);
    a.mul(t2, s3, s8); // PUT: rewrite the canonical value
    a.sd(t2, 8, t4);
    a.bind(donereq);
    a.sd(s4, static_cast<int32_t>(HostReg::KvDone), t6);
    a.j(poll);

    a.bind(stop);
    a.li(a0, 0);
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.sd(a0, static_cast<int32_t>(HostReg::Exit), t6);
    auto spin = a.newLabel();
    a.bind(spin);
    a.j(spin);
}

} // namespace riscy::server
