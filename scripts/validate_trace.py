#!/usr/bin/env python3
"""Validate observability trace exports (stdlib only; CI gate).

Checks a Konata/Kanata pipeline trace and/or a Chrome/Perfetto
trace-event JSON produced by the src/obs sinks:

  validate_trace.py --kanata trace.kanata --perfetto trace_timeline.json

Kanata checks: header line, monotonic cycle stream, every file id is
introduced by an I line before any L/S/E/R references it, S/E stage
pairing (no E without a preceding S of that stage, every started stage
eventually ends), and exactly one R (retire/flush) line per file id.

Perfetto checks: valid JSON, a traceEvents array, every event carries
the required keys for its phase (X: ts/dur/name, C: ts/name/args,
i: ts/name/s, M: name/args), and pid/tid/ts are integers.

Exit status 0 when every requested check passes, 1 otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return False


def validate_kanata(path):
    ok = True
    intro = set()       # fids introduced by I
    open_stages = {}    # fid -> set of open stage names
    retired = set()     # fids that saw an R line
    labeled = set()
    ncycles = 0
    with open(path, encoding="utf-8") as f:
        first = f.readline().rstrip("\n")
        if not first.startswith("Kanata\t"):
            return fail(f"{path}: missing 'Kanata' header (got {first!r})")
        for lineno, raw in enumerate(f, start=2):
            line = raw.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            cmd = parts[0]
            where = f"{path}:{lineno}"
            if cmd == "C=":
                if len(parts) != 2 or not parts[1].isdigit():
                    ok = fail(f"{where}: malformed C= line {line!r}")
                ncycles += 1
            elif cmd == "C":
                if len(parts) != 2 or not parts[1].isdigit():
                    ok = fail(f"{where}: malformed C line {line!r}")
                elif int(parts[1]) == 0:
                    ok = fail(f"{where}: zero cycle delta")
                ncycles += 1
            elif cmd == "I":
                if len(parts) != 4:
                    ok = fail(f"{where}: malformed I line {line!r}")
                    continue
                fid = parts[1]
                if fid in intro:
                    ok = fail(f"{where}: duplicate I for fid {fid}")
                intro.add(fid)
                open_stages[fid] = set()
            elif cmd in ("L", "S", "E", "R"):
                if len(parts) < 4:
                    ok = fail(f"{where}: malformed {cmd} line {line!r}")
                    continue
                fid = parts[1]
                if fid not in intro:
                    ok = fail(f"{where}: {cmd} references fid {fid} "
                              "before its I line")
                    continue
                if cmd == "L":
                    labeled.add(fid)
                elif cmd == "S":
                    st = parts[3]
                    if st in open_stages[fid]:
                        ok = fail(f"{where}: stage {st} re-opened for "
                                  f"fid {fid}")
                    open_stages[fid].add(st)
                elif cmd == "E":
                    st = parts[3]
                    if st not in open_stages[fid]:
                        ok = fail(f"{where}: E without S for stage {st} "
                                  f"fid {fid}")
                    else:
                        open_stages[fid].discard(st)
                elif cmd == "R":
                    if parts[3] not in ("0", "1"):
                        ok = fail(f"{where}: R type {parts[3]} not 0/1")
                    if fid in retired:
                        ok = fail(f"{where}: duplicate R for fid {fid}")
                    retired.add(fid)
            else:
                ok = fail(f"{where}: unknown command {cmd!r}")
    for fid, stages in open_stages.items():
        if stages:
            ok = fail(f"{path}: fid {fid} ends with open stages "
                      f"{sorted(stages)}")
    missing_r = intro - retired
    if missing_r:
        ok = fail(f"{path}: {len(missing_r)} fids have no R line "
                  f"(e.g. {sorted(missing_r)[:5]})")
    unlabeled = intro - labeled
    if unlabeled:
        ok = fail(f"{path}: {len(unlabeled)} fids have no L line")
    if not intro:
        ok = fail(f"{path}: no instructions in trace")
    if ok:
        print(f"OK: {path}: {len(intro)} uops, {ncycles} cycle marks")
    return ok


REQUIRED_KEYS = {
    "X": ("ts", "dur", "name", "pid", "tid"),
    "C": ("ts", "name", "args", "pid", "tid"),
    "i": ("ts", "name", "s", "pid", "tid"),
    "M": ("name", "args", "pid", "tid"),
}


def validate_perfetto(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail(f"{path}: traceEvents empty or not an array")
    ok = True
    counts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            ok = fail(f"{path}: event {i} has no phase")
            continue
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        req = REQUIRED_KEYS.get(ph)
        if req is None:
            ok = fail(f"{path}: event {i} has unexpected phase {ph!r}")
            continue
        for k in req:
            if k not in ev:
                ok = fail(f"{path}: {ph} event {i} missing key {k!r}")
        for k in ("ts", "dur", "pid", "tid"):
            if k in ev and not isinstance(ev[k], int):
                ok = fail(f"{path}: event {i} key {k!r} not an integer")
    if counts.get("X", 0) == 0:
        ok = fail(f"{path}: no X (rule fire) slices")
    if counts.get("M", 0) == 0:
        ok = fail(f"{path}: no M (metadata) events")
    if ok:
        summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"OK: {path}: {len(events)} events ({summary})")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--kanata", help="Konata/Kanata pipeline trace")
    ap.add_argument("--perfetto", help="Chrome/Perfetto trace-event JSON")
    args = ap.parse_args()
    if not args.kanata and not args.perfetto:
        ap.error("nothing to validate: pass --kanata and/or --perfetto")
    ok = True
    if args.kanata:
        ok = validate_kanata(args.kanata) and ok
    if args.perfetto:
        ok = validate_perfetto(args.perfetto) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
