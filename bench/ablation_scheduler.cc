/**
 * @file
 * CMD-kernel microbenchmarks (google-benchmark): the cost of the
 * rule-scheduling machinery itself — cycles/second for a pipeline of
 * FIFOs, rule-throughput scaling with design size, and the guard-
 * abort fast path. These quantify the simulation substrate the whole
 * reproduction runs on.
 */
#include <benchmark/benchmark.h>

#include "core/cmd.hh"
#include "core/timed_fifo.hh"

using namespace cmd;

namespace {

/** N-stage FIFO pipeline moving tokens every cycle. */
struct Pipeline {
    Kernel k;
    std::vector<std::unique_ptr<PipelineFifo<uint64_t>>> q;
    Reg<uint64_t> src;
    Reg<uint64_t> sink;

    explicit Pipeline(unsigned stages)
        : src(k, "src", 0), sink(k, "sink", 0)
    {
        for (unsigned i = 0; i < stages; i++) {
            q.push_back(std::make_unique<PipelineFifo<uint64_t>>(
                k, cmd::strfmt("q%u", i), 2));
        }
        k.rule("feed", [this] {
            q.front()->enq(src.read());
            src.write(src.read() + 1);
        }).uses({&q.front()->enqM});
        for (unsigned i = 0; i + 1 < stages; i++) {
            auto *a = q[i].get();
            auto *b = q[i + 1].get();
            k.rule(cmd::strfmt("move%u", i), [a, b] { b->enq(a->deq()); })
                .when([a, b] { return a->canDeq() && b->canEnq(); })
                .uses({&a->deqM, &b->enqM});
        }
        k.rule("drain", [this] {
            sink.write(sink.read() + q.back()->deq());
        }).when([this] { return q.back()->canDeq(); })
            .uses({&q.back()->deqM});
        k.elaborate();
    }
};

void
BM_PipelineCycles(benchmark::State &state)
{
    Pipeline p(static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        p.k.cycle();
    state.counters["rules/s"] = benchmark::Counter(
        double(state.iterations()) * (state.range(0) + 1),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineCycles)->Arg(4)->Arg(16)->Arg(64);

void
BM_GuardAbortFastPath(benchmark::State &state)
{
    // All rules permanently not-ready: measures the when()-guard
    // fast path that keeps idle rules cheap.
    Kernel k;
    Reg<int> never(k, "never", 0);
    for (int i = 0; i < 64; i++) {
        k.rule(cmd::strfmt("idle%d", i), [&] { require(false); })
            .when([&] { return never.read() != 0; });
    }
    k.elaborate();
    for (auto _ : state)
        k.cycle();
}
BENCHMARK(BM_GuardAbortFastPath);

void
BM_CmBlockPath(benchmark::State &state)
{
    // Two rules racing on a conflicting method: one CM-aborts per
    // cycle (the exceptional path).
    Kernel k;
    PipelineFifo<int> f(k, "f", 64);
    k.rule("e1", [&] { f.enq(1); }).uses({&f.enqM});
    k.rule("e2", [&] { f.enq(2); }).uses({&f.enqM});
    k.rule("d", [&] { f.deq(); })
        .when([&] { return f.canDeq(); })
        .uses({&f.deqM});
    k.elaborate();
    for (auto _ : state)
        k.cycle();
}
BENCHMARK(BM_CmBlockPath);

} // namespace

BENCHMARK_MAIN();
