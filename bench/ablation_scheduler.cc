/**
 * @file
 * CMD-kernel scheduler ablation: exhaustive (attempt every rule every
 * cycle), event-driven (sensitivity tracking + sleep/wake), compiled
 * (elaboration-time static schedule with profile-guided fast-path
 * promotion) and compiled-static (every rule compiled fast, no
 * profiling) side by side, on workloads spanning the idleness
 * spectrum:
 *
 *  - idle_pipeline: a deep FIFO pipeline fed one token every 128
 *    cycles, so a couple of stages carry tokens while ~190 sit empty
 *    — the idle-LSQ/TLB/L2 shape that dominates real system
 *    simulations, and the headline case for the event-driven win.
 *  - idle_guards: 64 permanently not-ready rules — the pure
 *    sleep-forever case.
 *  - busy_pipeline / busy_deep: the pipeline saturated with tokens at
 *    two depths, so no rule can sleep — where the compiled fast path
 *    (fused dispatch, no sensitivity capture, CM-inert method-call
 *    elision, fused commit) earns its keep over both dynamic modes.
 *  - busy_chain: a saturated dual-lane pipeline whose move rules
 *    advance both lanes per firing — the widest-rule shape.
 *
 * Every stage rule goes through a per-stage StageCtl block: the
 * status probes and bookkeeping calls (epoch check, scoreboard
 * search, credit check, perf counter) that the paper's fig 15-20
 * stage rules make on every firing besides their fifo moves. A bare
 * fifo shuffle under-represents that interface-method traffic, and
 * per-method-call enforcement is exactly the tax the schedulers
 * differ on.
 *
 * Every run is checked for architectural equivalence (snapshot
 * digest) across all four modes, and results are written both as a
 * human-readable table and as machine-readable BENCH_scheduler.json
 * so the perf trajectory can be tracked across PRs.
 *
 * --ci additionally enforces the scheduler-regression gates:
 *   (1) the compiled scheduler must not be slower than the best
 *       dynamic mode (exhaustive or event-driven) on any workload;
 *   (2) compiled vs exhaustive must reach >= 2x geomean over the
 *       busy-pipeline suite;
 *   (3) the BENCH_scheduler.json must actually have been written —
 *       a CI run whose numbers cannot be archived is an error.
 * Close calls in (1) and (2) are re-measured up to twice before
 * failing, so wall-clock noise on a loaded runner does not flip the
 * gates.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/cmd.hh"

using namespace cmd;

namespace {

constexpr unsigned kIdleStages = 192;
constexpr unsigned kIdleFeedInterval = 128;
constexpr unsigned kBusyStages = 48;
constexpr unsigned kDeepStages = 192;
constexpr unsigned kChainLanes = 2;
constexpr unsigned kChainStages = 48;
uint64_t gCycles = 200000;
int gReps = 3;

/** FNV-1a over a snapshot buffer: the architectural-state digest. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

/** The four measured modes (compiled twice: profiled and static). */
enum class Mode { Exhaustive, EventDriven, Compiled, CompiledStatic };

constexpr Mode kModes[] = {Mode::Exhaustive, Mode::EventDriven,
                           Mode::Compiled, Mode::CompiledStatic};

const char *
modeName(Mode m)
{
    switch (m) {
    case Mode::Exhaustive:
        return "exhaustive";
    case Mode::EventDriven:
        return "event";
    case Mode::Compiled:
        return "compiled";
    case Mode::CompiledStatic:
        return "compiled_static";
    }
    return "?";
}

SchedulerKind
modeKind(Mode m)
{
    return m == Mode::Exhaustive    ? SchedulerKind::Exhaustive
           : m == Mode::EventDriven ? SchedulerKind::EventDriven
                                    : SchedulerKind::Compiled;
}

/**
 * Per-stage control block: the interface-method traffic a processor
 * stage rule generates besides its fifo moves. Each firing of the
 * owning stage rule probes the redirect epoch, the scoreboard, the
 * downstream credit counter and the unit-busy flag, then bumps a perf
 * counter — the method-call mix of the paper's stage rules (fetch
 * consults the epoch and the BTB, execute searches the scoreboard and
 * the bypass network, ...). Every block is private to one stage rule,
 * so all methods are conflict-free and the rule stays CM-inert.
 */
struct StageCtl : Module {
    Method &epochM = method("epoch");
    Method &scoreM = method("score");
    Method &creditM = method("credit");
    Method &busyM = method("busy");
    Method &phaseM = method("phase");
    Method &bypassM = method("bypass");
    Method &stallM = method("stall");
    Method &robM = method("rob");
    Method &noteM = method("note");
    Reg<uint64_t> epoch_;
    Reg<uint64_t> score_;
    Reg<uint64_t> credit_;
    Reg<uint64_t> busy_;
    Reg<uint64_t> phase_;
    Reg<uint64_t> bypass_;
    Reg<uint64_t> stall_;
    Reg<uint64_t> rob_;
    Reg<uint64_t> moved_;

    StageCtl(Kernel &k, const std::string &name)
        : Module(k, name, Conflict::CF),
          epoch_(k, name + ".epoch", 0x9e3779b97f4a7c15ull),
          score_(k, name + ".score", 0),
          credit_(k, name + ".credit", ~0ull),
          busy_(k, name + ".busy", 0),
          phase_(k, name + ".phase", 1),
          bypass_(k, name + ".bypass", 0),
          stall_(k, name + ".stall", 0),
          rob_(k, name + ".rob", 3),
          moved_(k, name + ".moved", 0)
    {
    }

    /** Redirect epoch to stamp the moved token with. */
    uint64_t epoch() { epochM(); return epoch_.read(); }
    /** Scoreboard search result for the moved token. */
    uint64_t score() { scoreM(); return score_.read(); }
    /** Downstream credit available? */
    bool haveCredit() { creditM(); return credit_.read() != 0; }
    /** Functional-unit busy flag. */
    uint64_t busy() { busyM(); return busy_.read(); }
    /** Arbitration phase of this stage's issue port. */
    uint64_t phase() { phaseM(); return phase_.read(); }
    /** Bypass-network search result for the moved token. */
    uint64_t bypass() { bypassM(); return bypass_.read(); }
    /** Structural-stall predicate of the downstream unit. */
    bool stalled() { stallM(); return stall_.read() != 0; }
    /** Reorder-buffer occupancy credit for this stage. */
    uint64_t rob() { robM(); return rob_.read(); }
    /** Count one token moved through this stage. */
    void note(uint64_t v) { noteM(); moved_.write(moved_.read() + (v & 1)); }

    /** The method set a stage rule using this block must declare. */
    std::vector<const Method *>
    methods() const
    {
        return {&epochM, &scoreM, &creditM, &busyM, &phaseM,
                &bypassM, &stallM, &robM, &noteM};
    }

    /**
     * One stage's worth of probe/bookkeeping calls, folded into the
     * moved token so every scheduler must execute them to reach the
     * matching state digest.
     */
    uint64_t
    touch(uint64_t v)
    {
        v ^= epoch() + score();
        if (haveCredit())
            v += (v >> 7) | 1;
        v += busy() + phase() + bypass();
        if (!stalled())
            v ^= rob() << 1;
        note(v);
        return v;
    }
};

/** N-stage FIFO pipeline; feed throttled to one token per interval. */
struct Pipeline {
    Kernel k;
    std::vector<std::unique_ptr<PipelineFifo<uint64_t>>> q;
    std::vector<std::unique_ptr<StageCtl>> ctl;
    Reg<uint64_t> tick;
    Reg<uint64_t> src;
    Reg<uint64_t> sink;

    Pipeline(unsigned stages, unsigned feedInterval, SchedulerKind kind)
        : tick(k, "tick", 0), src(k, "src", 0), sink(k, "sink", 0)
    {
        for (unsigned i = 0; i < stages; i++) {
            q.push_back(std::make_unique<PipelineFifo<uint64_t>>(
                k, strfmt("q%u", i), 2));
            ctl.push_back(
                std::make_unique<StageCtl>(k, strfmt("ctl%u", i)));
        }
        k.rule("tick", [this] { tick.write(tick.read() + 1); });
        // requireFast: the exception-free implicit-guard exit.
        k.rule("feed", [this, feedInterval] {
            if (!requireFast(tick.read() % feedInterval == 0))
                return;
            q.front()->enq(src.read());
            src.write(src.read() + 1);
        }).uses({&q.front()->enqM});
        for (unsigned i = 0; i + 1 < stages; i++) {
            auto *a = q[i].get();
            auto *b = q[i + 1].get();
            auto *c = ctl[i].get();
            std::vector<const Method *> used = c->methods();
            used.push_back(&a->deqM);
            used.push_back(&b->enqM);
            k.rule(strfmt("move%u", i),
                   [a, b, c] { b->enq(c->touch(a->deq())); })
                .when([a, b] { return a->canDeq() && b->canEnq(); })
                .uses(used);
        }
        k.rule("drain", [this] {
            sink.write(sink.read() + q.back()->deq());
        }).when([this] { return q.back()->canDeq(); })
            .uses({&q.back()->deqM});
        k.setScheduler(kind);
        k.elaborate();
    }
};

/**
 * Saturated multi-lane pipeline: one move rule per stage advances all
 * lanes together, so each firing makes lanes*2 interface-method calls.
 */
struct ChainPipeline {
    Kernel k;
    std::vector<std::unique_ptr<PipelineFifo<uint64_t>>> q; // lane-major
    std::vector<std::unique_ptr<StageCtl>> ctl;              // lane-major
    Reg<uint64_t> src;
    Reg<uint64_t> sink;

    ChainPipeline(unsigned lanes, unsigned stages, SchedulerKind kind)
        : src(k, "src", 0), sink(k, "sink", 0)
    {
        for (unsigned l = 0; l < lanes; l++) {
            for (unsigned i = 0; i < stages; i++) {
                q.push_back(std::make_unique<PipelineFifo<uint64_t>>(
                    k, strfmt("q%u_%u", l, i), 2));
                ctl.push_back(std::make_unique<StageCtl>(
                    k, strfmt("ctl%u_%u", l, i)));
            }
        }
        auto at = [this, stages](unsigned l, unsigned i) {
            return q[l * stages + i].get();
        };
        auto ctlAt = [this, stages](unsigned l, unsigned i) {
            return ctl[l * stages + i].get();
        };
        k.rule("feed", [this, at, lanes, stages] {
            for (unsigned l = 0; l < lanes; l++)
                at(l, 0)->enq(src.read() + l);
            src.write(src.read() + 1);
        })
            .when([at, lanes] {
                for (unsigned l = 0; l < lanes; l++)
                    if (!at(l, 0)->canEnq())
                        return false;
                return true;
            })
            .uses({&at(0, 0)->enqM, &at(1, 0)->enqM});
        for (unsigned i = 0; i + 1 < stages; i++) {
            std::vector<const Method *> used;
            for (unsigned l = 0; l < lanes; l++) {
                for (const Method *m : ctlAt(l, i)->methods())
                    used.push_back(m);
                used.push_back(&at(l, i)->deqM);
                used.push_back(&at(l, i + 1)->enqM);
            }
            k.rule(strfmt("move%u", i), [at, ctlAt, lanes, i] {
                for (unsigned l = 0; l < lanes; l++)
                    at(l, i + 1)->enq(ctlAt(l, i)->touch(at(l, i)->deq()));
            })
                .when([at, lanes, i] {
                    for (unsigned l = 0; l < lanes; l++) {
                        if (!at(l, i)->canDeq() || !at(l, i + 1)->canEnq())
                            return false;
                    }
                    return true;
                })
                .uses(used);
        }
        k.rule("drain", [this, at, lanes, stages] {
            uint64_t s = sink.read();
            for (unsigned l = 0; l < lanes; l++)
                s += at(l, stages - 1)->deq();
            sink.write(s);
        })
            .when([at, lanes, stages] {
                for (unsigned l = 0; l < lanes; l++)
                    if (!at(l, stages - 1)->canDeq())
                        return false;
                return true;
            })
            .uses({&at(0, stages - 1)->deqM, &at(1, stages - 1)->deqM});
        k.setScheduler(kind);
        k.elaborate();
    }
};

/** 64 permanently not-ready rules behind when() guards. */
struct IdleGuards {
    Kernel k;
    Reg<int> never;

    explicit IdleGuards(SchedulerKind kind) : never(k, "never", 0)
    {
        for (int i = 0; i < 64; i++) {
            k.rule(strfmt("idle%d", i), [] { require(false); })
                .when([this] { return never.read() != 0; });
        }
        k.setScheduler(kind);
        k.elaborate();
    }
};

struct RunStats {
    double cps = 0;
    uint64_t stateDigest = 0;
    uint64_t attempts = 0;
    uint64_t sleepSkips = 0;
    uint64_t fastRules = 0;
};

template <typename MakeDesign>
RunStats
measure(MakeDesign make, Mode mode, int reps)
{
    RunStats best;
    for (int rep = 0; rep < reps; rep++) {
        auto d = make(modeKind(mode));
        Kernel &k = d->k;
        if (mode == Mode::CompiledStatic)
            k.setCompiledProfile(0);
        auto t0 = std::chrono::steady_clock::now();
        k.run(gCycles);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        double cps = double(gCycles) / secs;
        if (cps > best.cps) {
            best.cps = cps;
            best.stateDigest = digest(k.snapshot());
            best.attempts = k.ruleAttemptCount();
            best.sleepSkips = k.sleepSkipCount();
            best.fastRules = k.compiledFastRuleCount();
        }
    }
    return best;
}

struct Workload {
    std::string name;
    bool busy = false; ///< member of the busy-suite geomean gate
    std::function<RunStats(Mode, int)> run;
    RunStats m[4]; ///< indexed in kModes order
};

const RunStats &
stat(const Workload &w, Mode mode)
{
    return w.m[size_t(mode)];
}

bool
digestsMatch(const Workload &w)
{
    for (Mode mode : kModes) {
        if (stat(w, mode).stateDigest != stat(w, Mode::Exhaustive).stateDigest)
            return false;
    }
    return true;
}

double
bestDynamicCps(const Workload &w)
{
    return std::max(stat(w, Mode::Exhaustive).cps,
                    stat(w, Mode::EventDriven).cps);
}

/** Compiled-vs-exhaustive geomean over the busy-suite workloads. */
double
busySuiteGeomean(const std::vector<Workload> &work)
{
    std::vector<double> r;
    for (const Workload &w : work) {
        if (w.busy)
            r.push_back(stat(w, Mode::Compiled).cps /
                        stat(w, Mode::Exhaustive).cps);
    }
    return riscy::bench::geomean(r);
}

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    std::string outPath; // default: BENCH_scheduler.json in the cwd
    for (int i = 1; i < argc; i++) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--ci")) {
            ci = true;
        } else if (!std::strcmp(argv[i], "--cycles")) {
            gCycles = std::strtoull(need("--cycles"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--reps")) {
            gReps = int(std::strtol(need("--reps"), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--out")) {
            outPath = need("--out");
        } else {
            std::fprintf(stderr,
                         "usage: %s [--ci] [--cycles N] [--reps N] "
                         "[--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<Workload> work;
    work.push_back({"idle_pipeline", false,
                    [](Mode mode, int reps) {
                        return measure(
                            [](SchedulerKind kk) {
                                return std::make_unique<Pipeline>(
                                    kIdleStages, kIdleFeedInterval, kk);
                            },
                            mode, reps);
                    },
                    {}});
    work.push_back({"idle_guards", false,
                    [](Mode mode, int reps) {
                        return measure(
                            [](SchedulerKind kk) {
                                return std::make_unique<IdleGuards>(kk);
                            },
                            mode, reps);
                    },
                    {}});
    work.push_back({"busy_pipeline", true,
                    [](Mode mode, int reps) {
                        return measure(
                            [](SchedulerKind kk) {
                                return std::make_unique<Pipeline>(
                                    kBusyStages, 1, kk);
                            },
                            mode, reps);
                    },
                    {}});
    work.push_back({"busy_deep", true,
                    [](Mode mode, int reps) {
                        return measure(
                            [](SchedulerKind kk) {
                                return std::make_unique<Pipeline>(
                                    kDeepStages, 1, kk);
                            },
                            mode, reps);
                    },
                    {}});
    work.push_back({"busy_chain", true,
                    [](Mode mode, int reps) {
                        return measure(
                            [](SchedulerKind kk) {
                                return std::make_unique<ChainPipeline>(
                                    kChainLanes, kChainStages, kk);
                            },
                            mode, reps);
                    },
                    {}});

    for (Workload &w : work) {
        for (Mode mode : kModes)
            w.m[size_t(mode)] = w.run(mode, gReps);
    }

    // Gate (1) with de-flaking: a close loss on wall clock gets both
    // contenders re-measured (best-of over all rounds) before we call
    // it a regression.
    bool gateSpeed = true;
    if (ci) {
        for (Workload &w : work) {
            for (int round = 0;
                 round < 2 &&
                 stat(w, Mode::Compiled).cps < bestDynamicCps(w);
                 round++) {
                std::printf("re-measuring %s (compiled %.0f c/s vs "
                            "dynamic %.0f c/s)\n",
                            w.name.c_str(), stat(w, Mode::Compiled).cps,
                            bestDynamicCps(w));
                for (Mode mode :
                     {Mode::Exhaustive, Mode::EventDriven, Mode::Compiled}) {
                    RunStats again = w.run(mode, gReps);
                    if (again.cps > w.m[size_t(mode)].cps)
                        w.m[size_t(mode)] = again;
                }
            }
            if (stat(w, Mode::Compiled).cps < bestDynamicCps(w)) {
                gateSpeed = false;
                std::fprintf(stderr,
                             "GATE: compiled slower than best dynamic "
                             "mode on %s (%.0f < %.0f c/s)\n",
                             w.name.c_str(), stat(w, Mode::Compiled).cps,
                             bestDynamicCps(w));
            }
        }
        // Gate (2) de-flaking: the geomean rides on the same noisy
        // wall clocks, so a close miss re-measures both sides of every
        // busy-suite ratio (best-of merge) before the gate decides.
        for (int round = 0; round < 2 && busySuiteGeomean(work) < 2.0;
             round++) {
            std::printf("re-measuring busy suite (geomean %.2fx)\n",
                        busySuiteGeomean(work));
            for (Workload &w : work) {
                if (!w.busy)
                    continue;
                for (Mode mode : {Mode::Exhaustive, Mode::Compiled}) {
                    RunStats again = w.run(mode, gReps);
                    if (again.cps > w.m[size_t(mode)].cps)
                        w.m[size_t(mode)] = again;
                }
            }
        }
    }

    printf("%-14s %13s %13s %13s %13s %7s %7s %5s\n", "workload",
           "exhaustive", "event", "compiled", "cmp_static", "co/ex",
           "co/dyn", "state");
    std::vector<double> busyVsEx;
    for (const Workload &w : work) {
        double coEx =
            stat(w, Mode::Compiled).cps / stat(w, Mode::Exhaustive).cps;
        double coDyn = stat(w, Mode::Compiled).cps / bestDynamicCps(w);
        if (w.busy)
            busyVsEx.push_back(coEx);
        printf("%-14s %13.0f %13.0f %13.0f %13.0f %6.2fx %6.2fx %5s\n",
               w.name.c_str(), stat(w, Mode::Exhaustive).cps,
               stat(w, Mode::EventDriven).cps, stat(w, Mode::Compiled).cps,
               stat(w, Mode::CompiledStatic).cps, coEx, coDyn,
               digestsMatch(w) ? "match" : "DIVERGE");
    }
    double busyGeomean = riscy::bench::geomean(busyVsEx);
    printf("busy-suite compiled-vs-exhaustive geomean: %.2fx\n",
           busyGeomean);

    using riscy::bench::JsonObject;
    JsonObject cfg;
    cfg.put("cycles_per_run", gCycles)
        .put("reps", gReps)
        .put("idle_stages", kIdleStages)
        .put("idle_feed_interval", kIdleFeedInterval)
        .put("busy_stages", kBusyStages)
        .put("deep_stages", kDeepStages)
        .put("chain_lanes", kChainLanes)
        .put("chain_stages", kChainStages)
        .put("busy_geomean_compiled_vs_exhaustive", busyGeomean);
    std::vector<JsonObject> out;
    for (const Workload &w : work) {
        JsonObject o;
        o.put("workload", w.name)
            .put("busy_suite", w.busy)
            .put("cycles", gCycles)
            .put("digest_match", digestsMatch(w));
        for (Mode mode : kModes) {
            const RunStats &s = stat(w, mode);
            std::string p = modeName(mode);
            o.put(p + "_cps", s.cps).put(p + "_attempts", s.attempts);
        }
        o.put("event_sleep_skips", stat(w, Mode::EventDriven).sleepSkips)
            .put("compiled_fast_rules", stat(w, Mode::Compiled).fastRules)
            .put("speedup_event", stat(w, Mode::EventDriven).cps /
                                      stat(w, Mode::Exhaustive).cps)
            .put("speedup_compiled", stat(w, Mode::Compiled).cps /
                                         stat(w, Mode::Exhaustive).cps)
            .put("compiled_vs_best_dynamic",
                 stat(w, Mode::Compiled).cps / bestDynamicCps(w));
        // Kernel-only microbench: the retired unit is a cycle, and the
        // headline (compiled) run provides the wall time.
        riscy::bench::putSimSpeed(
            o, gCycles,
            uint64_t(1e9 * double(gCycles) / stat(w, Mode::Compiled).cps));
        out.push_back(std::move(o));
    }
    bool wrote =
        riscy::bench::writeBenchJson("scheduler", cfg, out, outPath);
    if (ci && !wrote) {
        std::fprintf(stderr,
                     "GATE: --ci requires BENCH_scheduler.json to be "
                     "written (open failed: %s)\n",
                     outPath.empty() ? "BENCH_scheduler.json"
                                     : outPath.c_str());
        return 1;
    }

    bool ok = true;
    for (const Workload &w : work)
        ok = ok && digestsMatch(w);
    if (ci) {
        ok = ok && gateSpeed;
        if (busyGeomean < 2.0) {
            std::fprintf(stderr,
                         "GATE: busy-suite compiled-vs-exhaustive "
                         "geomean %.2fx < 2.0x\n",
                         busyGeomean);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
