/**
 * @file
 * CMD-kernel scheduler ablation: exhaustive (attempt every rule every
 * cycle) versus event-driven (sensitivity tracking + sleep/wake)
 * side by side, on workloads chosen to span the idleness spectrum:
 *
 *  - idle_pipeline: a deep FIFO pipeline fed one token every 128
 *    cycles, so a couple of stages carry tokens while ~190 sit empty
 *    — the idle-LSQ/TLB/L2 shape that dominates real system
 *    simulations, and the headline case for the event-driven win.
 *  - busy_pipeline: the same pipeline saturated with tokens, so no
 *    rule can sleep — measures the tracking overhead floor.
 *  - idle_guards: 64 permanently not-ready rules — the pure
 *    sleep-forever case.
 *
 * Each run is checked for architectural equivalence (snapshot digest)
 * between the two schedulers, and results are written both as a
 * human-readable table and as machine-readable BENCH_scheduler.json
 * so the perf trajectory can be tracked across PRs.
 */
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/cmd.hh"

using namespace cmd;

namespace {

constexpr unsigned kIdleStages = 192;
constexpr unsigned kIdleFeedInterval = 128;
constexpr unsigned kBusyStages = 48;
constexpr uint64_t kCycles = 200000;
constexpr int kReps = 3;

/** FNV-1a over a snapshot buffer: the architectural-state digest. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

/** N-stage FIFO pipeline; feed throttled to one token per interval. */
struct Pipeline {
    Kernel k;
    std::vector<std::unique_ptr<PipelineFifo<uint64_t>>> q;
    Reg<uint64_t> tick;
    Reg<uint64_t> src;
    Reg<uint64_t> sink;

    Pipeline(unsigned stages, unsigned feedInterval, SchedulerKind kind)
        : tick(k, "tick", 0), src(k, "src", 0), sink(k, "sink", 0)
    {
        for (unsigned i = 0; i < stages; i++) {
            q.push_back(std::make_unique<PipelineFifo<uint64_t>>(
                k, strfmt("q%u", i), 2));
        }
        k.rule("tick", [this] { tick.write(tick.read() + 1); });
        // requireFast: the exception-free implicit-guard exit.
        k.rule("feed", [this, feedInterval] {
            if (!requireFast(tick.read() % feedInterval == 0))
                return;
            q.front()->enq(src.read());
            src.write(src.read() + 1);
        }).uses({&q.front()->enqM});
        for (unsigned i = 0; i + 1 < stages; i++) {
            auto *a = q[i].get();
            auto *b = q[i + 1].get();
            k.rule(strfmt("move%u", i), [a, b] { b->enq(a->deq()); })
                .when([a, b] { return a->canDeq() && b->canEnq(); })
                .uses({&a->deqM, &b->enqM});
        }
        k.rule("drain", [this] {
            sink.write(sink.read() + q.back()->deq());
        }).when([this] { return q.back()->canDeq(); })
            .uses({&q.back()->deqM});
        k.setScheduler(kind);
        k.elaborate();
    }
};

/** 64 permanently not-ready rules behind when() guards. */
struct IdleGuards {
    Kernel k;
    Reg<int> never;

    explicit IdleGuards(SchedulerKind kind) : never(k, "never", 0)
    {
        for (int i = 0; i < 64; i++) {
            k.rule(strfmt("idle%d", i), [] { require(false); })
                .when([this] { return never.read() != 0; });
        }
        k.setScheduler(kind);
        k.elaborate();
    }
};

struct RunStats {
    double cps = 0;
    uint64_t stateDigest = 0;
    uint64_t attempts = 0;
    uint64_t sleepSkips = 0;
    uint64_t guardThrows = 0;
    uint64_t fastGuardFails = 0;
};

template <typename MakeDesign>
RunStats
measure(MakeDesign make, SchedulerKind kind)
{
    RunStats best;
    for (int rep = 0; rep < kReps; rep++) {
        auto d = make(kind);
        Kernel &k = d->k;
        auto t0 = std::chrono::steady_clock::now();
        k.run(kCycles);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        double cps = double(kCycles) / secs;
        if (cps > best.cps) {
            best.cps = cps;
            best.stateDigest = digest(k.snapshot());
            best.attempts = k.ruleAttemptCount();
            best.sleepSkips = k.sleepSkipCount();
            best.guardThrows = k.guardThrowCount();
            best.fastGuardFails = k.fastGuardFailCount();
        }
    }
    return best;
}

struct Row {
    std::string name;
    RunStats ex, ev;
    bool match() const { return ex.stateDigest == ev.stateDigest; }
    double speedup() const { return ev.cps / ex.cps; }
};

} // namespace

int
main()
{
    std::vector<Row> rows;

    auto mkIdle = [](SchedulerKind kind) {
        return std::make_unique<Pipeline>(kIdleStages, kIdleFeedInterval,
                                          kind);
    };
    auto mkBusy = [](SchedulerKind kind) {
        return std::make_unique<Pipeline>(kBusyStages, 1, kind);
    };
    auto mkGuards = [](SchedulerKind kind) {
        return std::make_unique<IdleGuards>(kind);
    };

    rows.push_back({"idle_pipeline",
                    measure(mkIdle, SchedulerKind::Exhaustive),
                    measure(mkIdle, SchedulerKind::EventDriven)});
    rows.push_back({"busy_pipeline",
                    measure(mkBusy, SchedulerKind::Exhaustive),
                    measure(mkBusy, SchedulerKind::EventDriven)});
    rows.push_back({"idle_guards",
                    measure(mkGuards, SchedulerKind::Exhaustive),
                    measure(mkGuards, SchedulerKind::EventDriven)});

    printf("%-16s %14s %14s %8s %7s %12s %12s\n", "workload",
           "exhaustive c/s", "event c/s", "speedup", "state",
           "sleepSkips", "throws ex/ev");
    for (const Row &r : rows) {
        printf("%-16s %14.0f %14.0f %7.2fx %7s %12llu %6llu/%llu\n",
               r.name.c_str(), r.ex.cps, r.ev.cps, r.speedup(),
               r.match() ? "match" : "DIVERGE",
               (unsigned long long)r.ev.sleepSkips,
               (unsigned long long)r.ex.guardThrows,
               (unsigned long long)r.ev.guardThrows);
    }

    using riscy::bench::JsonObject;
    JsonObject cfg;
    cfg.put("cycles_per_run", kCycles)
        .put("reps", kReps)
        .put("idle_stages", kIdleStages)
        .put("idle_feed_interval", kIdleFeedInterval)
        .put("busy_stages", kBusyStages);
    std::vector<JsonObject> out;
    for (const Row &r : rows) {
        JsonObject o;
        o.put("workload", r.name)
            .put("cycles", kCycles)
            .put("exhaustive_cps", r.ex.cps)
            .put("event_cps", r.ev.cps)
            .put("speedup", r.speedup())
            .put("digest_match", r.match())
            .put("exhaustive_attempts", r.ex.attempts)
            .put("event_attempts", r.ev.attempts)
            .put("event_sleep_skips", r.ev.sleepSkips)
            .put("exhaustive_guard_throws", r.ex.guardThrows)
            .put("event_guard_throws", r.ev.guardThrows)
            .put("event_fast_guard_fails", r.ev.fastGuardFails);
        // Kernel-only microbench: the retired unit is a cycle, and the
        // headline (event-driven) run provides the wall time.
        riscy::bench::putSimSpeed(
            o, kCycles,
            uint64_t(1e9 * double(kCycles) / r.ev.cps));
        out.push_back(std::move(o));
    }
    riscy::bench::writeBenchJson("scheduler", cfg, out);

    bool ok = true;
    for (const Row &r : rows)
        ok = ok && r.match();
    return ok ? 0 : 1;
}
