/**
 * @file
 * The execution-mode ablation (ROADMAP Open item 1): functional
 * fast-forward and SMARTS-style sampled simulation versus the full
 * detailed model, on the Fig. 15-20 SPEC CINT2006 stand-ins.
 *
 * Three runs per workload:
 *
 *   detailed      every cycle through the CMD kernel (EventDriven),
 *                 the reference for IPC and simulation speed;
 *   fast-forward  the whole program through the GoldenModel
 *                 interpreter (ExecMode::FastForward);
 *   sampled       (skip, warmup, measure) interval sampling with warm
 *                 handoffs (ExecMode::Sampled), reporting mean IPC
 *                 with a 95% confidence interval.
 *
 * Gates (exit nonzero on violation):
 *   - geomean fast-forward speedup over detailed >= 100x
 *     (>= 50x under --ci, where workloads are trimmed for runner
 *     time and the detailed baseline runs fewer instructions);
 *   - max |sampled IPC - detailed IPC| / detailed IPC <= 2%.
 *
 * Writes BENCH_fastforward.json in the shared bench schema.
 *
 * Usage:
 *   ablation_fastforward [--ci] [--workload NAME]
 *                        [--exec-mode detailed|fast-forward|sampled]
 *                        [--skip N] [--warmup N] [--measure N]
 *                        [--out PATH]
 *
 * --exec-mode runs just that mode (quickstart; no gates), e.g.
 *   build/ablation_fastforward --exec-mode sampled --workload mcf
 */
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

namespace {

struct ModeResult {
    uint64_t cycles = 0;  ///< 0 for pure fast-forward (no timing)
    uint64_t insts = 0;
    uint64_t wallNs = 0;
    bool exited = false;
    uint64_t exitCode = 0;
    double ipc = 0;      ///< measured (detailed) or estimated (sampled)
    double ipcCi95 = 0;  ///< sampled only
    uint64_t intervals = 0;
    uint64_t measuredInsts = 0, measuredCycles = 0;
    uint64_t ffInsts = 0, warmupInsts = 0;
    double decodeHitRate = 0; ///< fast-forward only
    double kips() const
    {
        return wallNs ? 1e6 * double(insts) / double(wallNs) : 0.0;
    }
};

SystemConfig
baseConfig()
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.scheduler = cmd::SchedulerKind::EventDriven;
    return cfg;
}

ModeResult
runDetailed(const Workload &w)
{
    SystemConfig cfg = baseConfig();
    System sys(cfg);
    Image img = w.build(sys, 1);
    sys.elaborate();
    ModeResult r;
    r.cycles = workloads::runToCompletion(sys, img, 400000000);
    r.insts = sys.instret(0);
    r.wallNs = sys.runWallNs();
    r.exited = true;
    r.exitCode = sys.host().exitCode(0);
    r.ipc = double(r.insts) / double(r.cycles);
    return r;
}

ModeResult
runFastForward(const Workload &w)
{
    SystemConfig cfg = baseConfig();
    cfg.execMode = ExecMode::FastForward;
    System sys(cfg);
    Image img = w.build(sys, 1);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);
    ModeResult r;
    r.exited = sys.runFastForward();
    if (!r.exited)
        cmd::fatal("%s: fast-forward did not complete (%s)",
                   w.name.c_str(), toString(sys.stopReason()));
    r.insts = sys.sampleStats().ffInsts;
    r.wallNs = sys.runWallNs();
    r.exitCode = sys.host().exitCode(0);
    r.decodeHitRate = sys.funcHart(0).fastStats().hitRate();
    return r;
}

ModeResult
runSampled(const Workload &w, const SamplingConfig &sc)
{
    SystemConfig cfg = baseConfig();
    cfg.execMode = ExecMode::Sampled;
    cfg.sampling = sc;
    System sys(cfg);
    Image img = w.build(sys, 1);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);
    ModeResult r;
    r.exited = sys.runSampled();
    if (!r.exited)
        cmd::fatal("%s: sampled run did not complete (%s)",
                   w.name.c_str(), toString(sys.stopReason()));
    const SampleStats &st = sys.sampleStats();
    if (std::getenv("FF_DEBUG_INTERVALS")) {
        std::printf("%s per-interval CPI:", w.name.c_str());
        for (double c : st.intervalCpi)
            std::printf(" %.2f", c);
        std::printf("\n");
    }
    r.cycles = st.estTotalCycles;
    r.insts = st.totalInsts;
    r.wallNs = sys.runWallNs();
    r.exitCode = sys.host().exitCode(0);
    r.ipc = st.meanIpc;
    r.ipcCi95 = st.ipcCi95;
    r.intervals = st.intervals;
    r.measuredInsts = st.measuredInsts;
    r.measuredCycles = st.measuredCycles;
    r.ffInsts = st.ffInsts;
    r.warmupInsts = st.warmupInsts;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    std::string only, execMode, outPath;
    // Defaults tuned on the fig15-20 set: short strides keep several
    // measured windows inside even the smallest (toy-scale) workloads,
    // and functional warming (caches + TLBs + predictors) lets the
    // detailed warmup stay short.
    SamplingConfig sc;
    sc.skip = 3000;
    sc.warmup = 1000;
    sc.measure = 3000;
    for (int i = 1; i < argc; i++) {
        auto val = [&]() -> const char * {
            if (i + 1 >= argc)
                cmd::fatal("%s needs a value", argv[i]);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--ci"))
            ci = true;
        else if (!std::strcmp(argv[i], "--workload"))
            only = val();
        else if (!std::strcmp(argv[i], "--exec-mode"))
            execMode = val();
        else if (!std::strcmp(argv[i], "--skip"))
            sc.skip = std::strtoull(val(), nullptr, 0);
        else if (!std::strcmp(argv[i], "--warmup"))
            sc.warmup = std::strtoull(val(), nullptr, 0);
        else if (!std::strcmp(argv[i], "--measure"))
            sc.measure = std::strtoull(val(), nullptr, 0);
        else if (!std::strcmp(argv[i], "--out"))
            outPath = val();
        else
            cmd::fatal("unknown flag %s", argv[i]);
    }

    std::vector<Workload> all = workloads::specWorkloads();
    std::vector<Workload> ws;
    for (const Workload &w : all) {
        if (!only.empty() && w.name != only)
            continue;
        // CI trims to four profiles: mixed, TLB-bound, cache-miss
        // bound, and predictor-bound.
        if (ci && only.empty() && w.name != "bzip2" && w.name != "mcf" &&
            w.name != "libquantum" && w.name != "sjeng")
            continue;
        ws.push_back(w);
    }
    if (ws.empty())
        cmd::fatal("no workload matches '%s'", only.c_str());

    // Quickstart path: run one mode, print its numbers, no gates.
    if (!execMode.empty()) {
        for (const Workload &w : ws) {
            if (execMode == "detailed") {
                ModeResult r = runDetailed(w);
                std::printf("%-12s detailed: %llu insts, %llu cycles, "
                            "IPC %.3f, %.0f KIPS\n",
                            w.name.c_str(), (unsigned long long)r.insts,
                            (unsigned long long)r.cycles, r.ipc,
                            r.kips());
            } else if (execMode == "fast-forward") {
                ModeResult r = runFastForward(w);
                std::printf("%-12s fast-forward: %llu insts, %.1f MIPS "
                            "(decode cache %.1f%% hits)\n",
                            w.name.c_str(), (unsigned long long)r.insts,
                            r.kips() / 1000.0, 100 * r.decodeHitRate);
            } else if (execMode == "sampled") {
                ModeResult r = runSampled(w, sc);
                std::printf("%-12s sampled: IPC %.3f +/- %.3f (95%% CI, "
                            "%llu intervals), est %llu cycles, "
                            "%.0f KIPS\n",
                            w.name.c_str(), r.ipc, r.ipcCi95,
                            (unsigned long long)r.intervals,
                            (unsigned long long)r.cycles, r.kips());
            } else {
                cmd::fatal("unknown --exec-mode '%s'", execMode.c_str());
            }
        }
        return 0;
    }

    const double speedupGate = ci ? 50.0 : 100.0;
    const double ipcErrGatePct = 2.0;

    printHeader("execution modes (fig15-20 workloads)",
                {"det-IPC", "smp-IPC", "err-%", "det-KIPS", "ff-MIPS",
                 "speedup"});
    std::vector<JsonObject> rows;
    std::vector<double> speedups, errs;
    bool ok = true;
    for (const Workload &w : ws) {
        ModeResult det = runDetailed(w);
        ModeResult ff = runFastForward(w);
        ModeResult smp = runSampled(w, sc);

        if (ff.insts != det.insts || ff.exitCode != det.exitCode) {
            std::printf("%-12s FF DIVERGED: %llu insts exit %llu vs "
                        "detailed %llu insts exit %llu\n",
                        w.name.c_str(), (unsigned long long)ff.insts,
                        (unsigned long long)ff.exitCode,
                        (unsigned long long)det.insts,
                        (unsigned long long)det.exitCode);
            ok = false;
        }
        double speedup = ff.kips() / det.kips();
        double errPct = 100.0 * (smp.ipc - det.ipc) / det.ipc;
        speedups.push_back(speedup);
        errs.push_back(errPct < 0 ? -errPct : errPct);
        printRow(w.name,
                 {det.ipc, smp.ipc, errPct, det.kips(),
                  ff.kips() / 1000.0, speedup});

        JsonObject o;
        o.put("workload", w.name)
            .put("detailed_cycles", det.cycles)
            .put("detailed_insts", det.insts)
            .put("detailed_ipc", det.ipc)
            .put("detailed_kips", det.kips())
            .put("ff_insts", ff.insts)
            .put("ff_kips", ff.kips())
            .put("ff_decode_hit_rate", ff.decodeHitRate)
            .put("ff_speedup", speedup)
            .put("sampled_ipc", smp.ipc)
            .put("sampled_ipc_ci95", smp.ipcCi95)
            .put("sampled_intervals", smp.intervals)
            .put("sampled_est_cycles", smp.cycles)
            .put("sampled_total_insts", smp.insts)
            .put("sampled_measured_insts", smp.measuredInsts)
            .put("sampled_measured_cycles", smp.measuredCycles)
            .put("sampled_ff_insts", smp.ffInsts)
            .put("sampled_warmup_insts", smp.warmupInsts)
            .put("ipc_err_pct", errPct);
        putSimSpeed(o, ff.insts, ff.wallNs);
        rows.push_back(std::move(o));
    }

    double gm = geomean(speedups);
    double maxErr = 0;
    for (double e : errs)
        maxErr = e > maxErr ? e : maxErr;
    std::printf("\ngeomean fast-forward speedup: %.1fx (gate >= %.0fx)\n"
                "max sampled IPC error: %.2f%% (gate <= %.1f%%)\n",
                gm, speedupGate, maxErr, ipcErrGatePct);
    if (gm < speedupGate) {
        std::printf("FAIL: fast-forward speedup below gate\n");
        ok = false;
    }
    if (maxErr > ipcErrGatePct) {
        std::printf("FAIL: sampled IPC error above gate\n");
        ok = false;
    }

    JsonObject cfg;
    cfg.put("system", "RiscyOO-B")
        .put("scheduler", "event")
        .put("ci", ci)
        .put("skip", sc.skip)
        .put("warmup", sc.warmup)
        .put("measure", sc.measure)
        .put("speedup_gate", speedupGate)
        .put("ipc_err_gate_pct", ipcErrGatePct)
        .put("geomean_speedup", gm)
        .put("max_ipc_err_pct", maxErr);
    writeBenchJson("fastforward", cfg, rows, outPath);

    return ok ? 0 : 1;
}
