/**
 * @file
 * Server-scale ablation: 16/32-core serverConfig systems (banked L2
 * directory slices + DramCtl contention model) serving the open-loop
 * key-value workload, swept over offered load from well below the
 * service capacity up past saturation. Open-loop arrivals do not wait
 * for service, so past the knee the backlog — and with it the p99/p99.9
 * sojourn time — grows without bound while throughput flattens at the
 * service capacity: the classic tail-latency curve this bench exists
 * to reproduce and gate on.
 *
 * Each sweep row reports throughput, latency percentiles, queue
 * depths, DramCtl row-hit-rate / per-bank load balance / occupancy,
 * and the CPI split between L2-hit and DRAM-bound D-misses
 * (d_miss vs d_miss_dram).
 *
 * Gates (--ci):
 *   g1 service     every sweep run completes every offered request,
 *                  all GETs verify and every worker exits cleanly
 *   g2 knee        per config, the peak load is past saturation:
 *                  completed throughput is capped well below the
 *                  offered load and p99 at peak is >= 4x p99 at the
 *                  lowest load. On the 4-point 16-core sweep the p99
 *                  slope over the last load step must additionally
 *                  exceed twice the slope over the first step (strict
 *                  superlinearity; the 32-core sweep's pre-knee region
 *                  is not flat — 32 cores contend on 4 banks from the
 *                  start — so the slope test is 16-core only)
 *   g3 digest      Event-driven vs Compiled replay of one fixed
 *                  16-core cycle window from the same snapshot ends
 *                  bit-identical (state digest + instret + completed
 *                  request count)
 *   g4 dram        the contention model is actually exercised: DRAM
 *                  reads > 0 and 0 < rowHitRate <= 1 on every row
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cache/l2_banks.hh"
#include "server/kv.hh"

using namespace riscy;
using namespace riscy::bench;

namespace {

constexpr Addr kEntry = kDramBase;

/** FNV-1a over a snapshot buffer: the architectural-state digest. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

/** Worker stacks above the code image and the KV table. */
std::vector<Addr>
stacks(uint32_t n)
{
    std::vector<Addr> s;
    for (uint32_t i = 0; i < n; i++)
        s.push_back(kEntry + 0x400000 + i * 0x10000);
    return s;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

server::KvConfig
kvConfigFor(uint32_t cores, double load, uint32_t requests)
{
    server::KvConfig kc;
    kc.harts = cores;
    kc.requests = requests;
    kc.reqPerKilocycle = load;
    kc.keys = 4096;
    kc.tableSlots = 8192;
    kc.zipf = 0.8;
    kc.putFrac = 0.1;
    kc.seed = 1234;
    return kc;
}

/** One offered-load point: fresh system, run to drain, full stats. */
struct SweepRow {
    std::string config;
    uint32_t cores = 0, banks = 0;
    double load = 0; ///< offered req / kilocycle (aggregate)
    server::KvSummary s;
    bool ok = false; ///< drained, verified, clean exits
    uint64_t cycles = 0, instret = 0, wallNs = 0;
    double rowHitRate = 0;
    uint64_t dramReads = 0, dramWrites = 0;
    uint64_t bankReqsMin = 0, bankReqsMax = 0;
    double bankOccMeanMax = 0; ///< busiest bank's mean queue occupancy
    uint64_t cpiDMiss = 0, cpiDMissDram = 0, cpiCycles = 0;
};

SweepRow
runSweepPoint(uint32_t cores, uint32_t banks, double load,
              uint32_t requests, uint64_t maxCycles)
{
    SystemConfig cfg = SystemConfig::serverConfig(cores, banks);
    cfg.scheduler = cmd::SchedulerKind::Compiled;
    cfg.obs.cpi = true;
    System sys(cfg);

    server::KvConfig kc = kvConfigFor(cores, load, requests);
    server::KvHost kv(kc);
    server::preloadKvTable(sys.mem(), kc);
    sys.host().attachKv(&kv);

    asmkit::Assembler a(kEntry);
    server::emitKvWorker(a, kc);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(cores));

    uint64_t t0 = nowNs();
    bool exited = sys.run(maxCycles);
    uint64_t t1 = nowNs();

    SweepRow r;
    r.config = cfg.name;
    r.cores = cores;
    r.banks = banks;
    r.load = load;
    r.s = kv.summarize();
    r.cycles = sys.kernel().cycleCount();
    r.wallNs = t1 - t0;
    r.ok = exited && !sys.host().failed() &&
           r.s.completed == r.s.offered;
    for (uint32_t i = 0; i < cores; i++) {
        if (sys.host().exitCode(i) != 0)
            r.ok = false;
        r.instret += sys.instret(i);
    }

    DramCtl &ctl = sys.hier().bankedFront()->dramCtl();
    cmd::StatGroup &st = ctl.stats();
    r.rowHitRate = st.getFormula("rowHitRate");
    r.dramReads = st.get("reads");
    r.dramWrites = st.get("writes");
    r.bankReqsMin = ~0ull;
    for (uint32_t b = 0; b < banks; b++) {
        uint64_t reqs = st.get(cmd::strfmt("bank%u.reqs", b));
        r.bankReqsMin = std::min(r.bankReqsMin, reqs);
        r.bankReqsMax = std::max(r.bankReqsMax, reqs);
        const cmd::Histogram *h =
            st.getHistogram(cmd::strfmt("bank%u.occupancy", b));
        if (h)
            r.bankOccMeanMax = std::max(r.bankOccMeanMax, h->mean());
    }
    for (uint32_t i = 0; i < cores; i++) {
        if (const obs::CpiStack *cp = sys.cpi(i)) {
            r.cpiDMiss += cp->count(obs::StallCause::DMiss);
            r.cpiDMissDram += cp->count(obs::StallCause::DMissDram);
            r.cpiCycles += cp->cycles();
        }
    }
    return r;
}

/** Event-vs-Compiled replay of one fixed window from one snapshot. */
struct DigestLeg {
    uint64_t evDigest = 0, coDigest = 0;
    uint64_t evInstret = 0, coInstret = 0;
    uint64_t evCompleted = 0, coCompleted = 0;
    bool match = false;
};

DigestLeg
runDigestLeg(uint32_t cores, uint32_t banks, double load,
             uint32_t requests, uint64_t window)
{
    SystemConfig cfg = SystemConfig::serverConfig(cores, banks);
    cfg.scheduler = cmd::SchedulerKind::EventDriven;
    System sys(cfg);

    server::KvConfig kc = kvConfigFor(cores, load, requests);
    server::preloadKvTable(sys.mem(), kc);
    asmkit::Assembler a(kEntry);
    server::emitKvWorker(a, kc);
    a.load(sys.mem(), kEntry);
    sys.elaborate();
    sys.start(kEntry, 0, stacks(cores));

    const std::vector<uint8_t> snap0 = sys.kernel().snapshot();
    const PhysMem mem0 = sys.mem();

    // The KV host is not part of the kernel snapshot, so every replay
    // gets a fresh instance — its schedule is a pure function of the
    // config, so two instances are interchangeable.
    auto leg = [&](cmd::SchedulerKind kind, uint64_t &dig,
                   uint64_t &instret, uint64_t &completed) {
        sys.kernel().restore(snap0);
        sys.mem() = mem0;
        sys.host().reset();
        auto kv = std::make_unique<server::KvHost>(kc);
        sys.host().attachKv(kv.get());
        sys.kernel().setScheduler(kind);
        uint64_t instret0 = 0;
        for (uint32_t i = 0; i < cores; i++)
            instret0 += sys.instret(i);
        sys.kernel().run(window);
        dig = digest(sys.kernel().snapshot());
        for (uint32_t i = 0; i < cores; i++)
            instret += sys.instret(i);
        instret -= instret0;
        completed = kv->summarize().completed;
        sys.host().attachKv(nullptr);
    };

    DigestLeg d;
    leg(cmd::SchedulerKind::EventDriven, d.evDigest, d.evInstret,
        d.evCompleted);
    leg(cmd::SchedulerKind::Compiled, d.coDigest, d.coInstret,
        d.coCompleted);
    d.match = d.evDigest == d.coDigest && d.evInstret == d.coInstret &&
              d.evCompleted == d.coCompleted;
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    // --ci uses the same sweep; the flag only arms the gates.
    for (int i = 1; i < argc; i++)
        if (std::string(argv[i]) == "--ci")
            ci = true;

    struct Config {
        uint32_t cores, banks, requests;
        std::vector<double> loads; ///< aggregate req / kilocycle
    };
    // Loads span ~1/20th of capacity up past saturation; the 32-core
    // sweep is shorter (3 points, fewer requests) to bound wall clock.
    std::vector<Config> configs = {
        {16, 4, 600, {10.0, 30.0, 100.0, 300.0}},
        {32, 4, 400, {20.0, 60.0, 400.0}},
    };

    std::vector<SweepRow> rows;
    bool ok = true;

    for (const Config &c : configs) {
        std::printf("\n== server-%uc%ub: %u requests, open-loop sweep "
                    "==\n%-10s %10s %10s %8s %8s %8s %8s %8s %10s %8s\n",
                    c.cores, c.banks, c.requests, "load/kc", "tput/kc",
                    "p50", "p95", "p99", "p99.9", "max", "maxQ",
                    "rowHit", "wall ms");
        for (double load : c.loads) {
            SweepRow r =
                runSweepPoint(c.cores, c.banks, load, c.requests,
                              /*maxCycles=*/20'000'000);
            std::printf("%-10.1f %10.2f %10llu %8llu %8llu %8llu %8llu "
                        "%8llu %10.3f %8.1f%s\n",
                        r.load, r.s.throughputPerKc,
                        (unsigned long long)r.s.p50,
                        (unsigned long long)r.s.p95,
                        (unsigned long long)r.s.p99,
                        (unsigned long long)r.s.p999,
                        (unsigned long long)r.s.maxLat,
                        (unsigned long long)r.s.maxQueueDepth,
                        r.rowHitRate, double(r.wallNs) * 1e-6,
                        r.ok ? "" : "  [FAILED]");
            rows.push_back(r);

            // g1: open loop or not, every offered request must be
            // served and verified before the workers exit.
            if (!r.ok) {
                std::printf("GATE g1: %s at load %.1f did not serve "
                            "cleanly (%llu/%llu completed)\n",
                            r.config.c_str(), r.load,
                            (unsigned long long)r.s.completed,
                            (unsigned long long)r.s.offered);
                ok = false;
            }
            // g4: the sweep must actually exercise the DRAM model.
            if (r.dramReads == 0 || r.rowHitRate <= 0.0 ||
                r.rowHitRate > 1.0) {
                std::printf("GATE g4: %s at load %.1f has degenerate "
                            "DRAM stats (reads %llu, rowHitRate %f)\n",
                            r.config.c_str(), r.load,
                            (unsigned long long)r.dramReads,
                            r.rowHitRate);
                ok = false;
            }
        }

        // g2: saturation knee. At peak load the service must be
        // saturated (throughput capped well below the offered load)
        // with the tail blown up vs the low-load baseline; on the
        // 4-point 16-core sweep the p99-vs-load curve must also be
        // strictly convex (last-step slope > 2x first-step slope).
        size_t n = c.loads.size();
        const SweepRow *first = &rows[rows.size() - n];
        const SweepRow *last = &rows[rows.size() - 1];
        const SweepRow *prev = &rows[rows.size() - 2];
        double sFirst = (double(first[1].s.p99) - double(first[0].s.p99)) /
                        (first[1].load - first[0].load);
        double sLast = (double(last->s.p99) - double(prev->s.p99)) /
                       (last->load - prev->load);
        std::printf("   knee: p99 slope %.2f cyc per req/kc (first "
                    "step) -> %.2f (last step), p99 %llux low-load, "
                    "peak tput %.1f/%.1f offered\n",
                    sFirst, sLast,
                    (unsigned long long)(first[0].s.p99
                                             ? last->s.p99 / first[0].s.p99
                                             : 0),
                    last->s.throughputPerKc, last->load);
        bool saturated = last->s.throughputPerKc < 0.75 * last->load &&
                         last->s.p99 >= 4 * first[0].s.p99;
        bool convex = n < 4 || sLast > 2.0 * sFirst;
        if (!saturated || !convex) {
            std::printf("GATE g2: no saturation knee on %s (p99 "
                        "slopes %.2f -> %.2f, p99 %llu vs %llu, peak "
                        "tput %.1f at offered %.1f)\n",
                        last->config.c_str(), sFirst, sLast,
                        (unsigned long long)last->s.p99,
                        (unsigned long long)first[0].s.p99,
                        last->s.throughputPerKc, last->load);
            ok = false;
        }
    }

    // g3: scheduler equivalence on the server topology under the KV
    // workload — a fixed 16-core window, Event vs Compiled.
    DigestLeg d = runDigestLeg(16, 4, 60.0, 400, 30'000);
    std::printf("\ndigest leg (16c4b, 30k cycles): event %#018llx / "
                "%llu instret / %llu done, compiled %#018llx / %llu "
                "instret / %llu done -> %s\n",
                (unsigned long long)d.evDigest,
                (unsigned long long)d.evInstret,
                (unsigned long long)d.evCompleted,
                (unsigned long long)d.coDigest,
                (unsigned long long)d.coInstret,
                (unsigned long long)d.coCompleted,
                d.match ? "match" : "DIVERGENCE");
    if (!d.match) {
        std::printf("GATE g3: event vs compiled diverged on the "
                    "server config\n");
        ok = false;
    }

    JsonObject jcfg;
    jcfg.put("workload", "kv-open-loop")
        .put("keys", uint64_t(4096))
        .put("table_slots", uint64_t(8192))
        .put("zipf", 0.8)
        .put("put_frac", 0.1)
        .put("seed", uint64_t(1234))
        .put("scheduler", "compiled");
    std::vector<JsonObject> out;
    for (const SweepRow &r : rows) {
        JsonObject o;
        o.put("config", r.config)
            .put("cores", r.cores)
            .put("banks", r.banks)
            .put("offered_per_kc", r.load)
            .put("offered", r.s.offered)
            .put("completed", r.s.completed)
            .put("ok", r.ok)
            .put("cycles", r.cycles)
            .put("instret", r.instret)
            .put("window_cycles", r.s.windowCycles)
            .put("throughput_per_kc", r.s.throughputPerKc)
            .put("p50", r.s.p50)
            .put("p95", r.s.p95)
            .put("p99", r.s.p99)
            .put("p999", r.s.p999)
            .put("max_latency", r.s.maxLat)
            .put("mean_latency", r.s.meanLat)
            .put("mean_queue_depth", r.s.meanQueueDepth)
            .put("max_queue_depth", r.s.maxQueueDepth)
            .put("dram_reads", r.dramReads)
            .put("dram_writes", r.dramWrites)
            .put("dram_row_hit_rate", r.rowHitRate)
            .put("bank_reqs_min", r.bankReqsMin)
            .put("bank_reqs_max", r.bankReqsMax)
            .put("bank_occ_mean_max", r.bankOccMeanMax)
            .put("cpi_d_miss", r.cpiDMiss)
            .put("cpi_d_miss_dram", r.cpiDMissDram)
            .put("cpi_cycles", r.cpiCycles);
        putSimSpeed(o, r.cycles, r.wallNs);
        out.push_back(std::move(o));
    }
    {
        JsonObject o;
        o.put("config", "server-16c4b")
            .put("mode", "digest-event-vs-compiled")
            .put("cycles", uint64_t(30'000))
            .putHex("digest_event", d.evDigest)
            .putHex("digest_compiled", d.coDigest)
            .put("instret", d.evInstret)
            .put("digest_match", d.match);
        out.push_back(std::move(o));
    }
    bool wrote = writeBenchJson("server", jcfg, out);
    if (ci && !wrote) {
        std::fprintf(stderr,
                     "GATE: --ci requires BENCH_server.json to be "
                     "written\n");
        ok = false;
    }

    return ok ? 0 : 1;
}
