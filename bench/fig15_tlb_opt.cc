/**
 * @file
 * Paper Fig. 15: performance of RiscyOO-T+ normalized to RiscyOO-B
 * per SPEC-profile benchmark (higher is better). The paper reports a
 * 29% geometric-mean gain with ~2x on astar; the shape to reproduce
 * is "TLB-miss-heavy benchmarks (mcf/astar/omnetpp) gain the most,
 * low-miss benchmarks are flat".
 */
#include <cmath>

#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto specs = workloads::specWorkloads();
    printHeader("Fig. 15: RiscyOO-T+ performance normalized to RiscyOO-B",
                {"B-cycles", "T+-cycles", "normPerf"});
    std::vector<double> norms;
    for (const auto &w : specs) {
        RunResult b = runOn(SystemConfig::riscyooB(), w);
        RunResult t = runOn(SystemConfig::riscyooTPlus(), w);
        double norm = double(b.cycles) / double(t.cycles);
        norms.push_back(norm);
        printRow(w.name, {double(b.cycles), double(t.cycles), norm},
                 " %12.3g");
    }
    printRow("geo-mean", {0, 0, geomean(norms)}, " %12.3g");
    std::printf("(paper: geo-mean 1.29, astar ~2.0)\n");
    return 0;
}
