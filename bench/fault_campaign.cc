/**
 * @file
 * Deterministic fault-injection campaign on the OOO core (see
 * core/harden.hh and DESIGN.md "Hardening & fault injection").
 *
 * A self-checking checksum workload runs once clean (the golden run),
 * then once per planned fault with exactly one fault injected at its
 * planned commit boundary. Each faulted run is classified against the
 * golden commit stream and exit code:
 *
 *   masked   - exited cleanly, commit stream and exit code identical
 *   detected - KernelFault (design error), or the workload's own
 *              checksum self-check fired the host Fail channel
 *   sdc      - exited "cleanly" with a divergent result (silent data
 *              corruption)
 *   hang     - forward-progress watchdog tripped, or the cycle budget
 *              ran out (deadlock/livelock)
 *
 * The campaign is bit-reproducible: plans are a pure function of
 * (seed, design), and the whole campaign is run twice and compared.
 * Crash dumps of the first few detected/hung runs land in
 * fault_dumps/; results go to BENCH_faults.json.
 *
 * Usage: fault_campaign [nFaults=48] [seed=20260805] [out.json]
 */
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "asmkit/assembler.hh"
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;
using namespace riscy::asmkit;
using cmd::FaultInjector;
using cmd::FaultOutcome;
using cmd::FaultPlan;
using cmd::FaultType;
using cmd::KernelFault;
using cmd::strfmt;
using cmd::Watchdog;

namespace {

constexpr Addr kEntry = kDramBase;

/**
 * Fill-then-verify checksum kernel, engineered so every outcome class
 * is reachable: pass 1 fills 256 dwords from an LCG while summing in a
 * register; pass 2 re-sums from memory; a mismatch stores to the host
 * Fail channel (detected). A second accumulator (s5) stays live in a
 * register for the whole run and folds into the exit code without ever
 * being cross-checked -- corruption of unchecked-but-architecturally-
 * live state is exactly what silent data corruption is, so strikes on
 * it surface as SDC rather than detected.
 */
Assembler
checksumWorkload()
{
    Assembler a(kEntry);
    constexpr int kWords = 256;
    a.li(s0, kEntry + 0x10000); // array base
    a.li(s1, 0);                // i
    a.li(s2, 0);                // sum1 (fill-time)
    a.li(s3, 0x1234);           // LCG state
    a.li(s5, 0xabcd);           // unchecked accumulator (SDC surface)
    a.li(t0, 0x27bb2ee6);       // LCG multiplier
    a.li(t2, kWords);
    auto fill = a.newLabel();
    a.bind(fill);
    a.mul(s3, s3, t0);
    a.addi(s3, s3, 0x5b5);
    a.slli(t1, s1, 3);
    a.add(t1, t1, s0);
    a.sd(s3, 0, t1);
    a.add(s2, s2, s3);
    a.slli(t4, s5, 1);
    a.xor_(s5, t4, s1);
    a.addi(s1, s1, 1);
    a.blt(s1, t2, fill);

    a.li(s1, 0);
    a.li(s4, 0); // sum2 (verify-time)
    auto verify = a.newLabel();
    a.bind(verify);
    a.slli(t1, s1, 3);
    a.add(t1, t1, s0);
    a.ld(t3, 0, t1);
    a.add(s4, s4, t3);
    a.addi(s1, s1, 1);
    a.blt(s1, t2, verify);

    auto fail = a.newLabel();
    a.bne(s2, s4, fail);
    // exit(((sum1 ^ s5) & 0xffffff) | 1): both checksums are the
    // visible result, but only sum1 was cross-checked.
    a.xor_(a0, s2, s5);
    a.li(t1, 0xffffff);
    a.and_(a0, a0, t1);
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin1 = a.newLabel();
    a.bind(spin1);
    a.j(spin1);

    a.bind(fail); // self-check mismatch: raise the Fail channel
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Fail));
    a.sd(s2, 0, t6);
    auto spin2 = a.newLabel();
    a.bind(spin2);
    a.j(spin2);
    return a;
}

/** Order-sensitive FNV-1a over the architectural commit stream. */
struct CommitDigest
{
    uint64_t h = 1469598103934665603ull;
    void
    add(const CommitRecord &r)
    {
        auto mix = [this](uint64_t v) {
            for (int i = 0; i < 8; i++) {
                h ^= uint8_t(v >> (8 * i));
                h *= 1099511628211ull;
            }
        };
        mix(r.pc);
        mix(r.raw);
        if (r.hasRd && !r.volatileRd)
            mix(r.rdVal);
    }
};

struct RunResultF
{
    FaultOutcome outcome = FaultOutcome::Masked;
    uint64_t digest = 0;
    uint64_t exitCode = 0;
    uint64_t cycles = 0;
    uint64_t instret = 0;
    uint64_t wallNs = 0;
    bool exited = false;
    std::string dump; ///< crash-dump body for detected/hang runs
};

/**
 * One run of the workload with at most one fault injected. The drive
 * loop applies the plan at its commit boundary, releases GuardStuck
 * windows, and polls a heartbeat watchdog.
 */
RunResultF
runOne(const Assembler &prog, const FaultPlan *plan, uint64_t budget,
       uint64_t stallCycles)
{
    SystemConfig cfg = SystemConfig::riscyooB();
    cfg.cores = 1;
    cfg.scheduler = cmd::SchedulerKind::EventDriven;
    System sys(cfg);
    const_cast<Assembler &>(prog).load(sys.mem(), kEntry);
    sys.elaborate();

    RunResultF r;
    CommitDigest dig;
    sys.setOnCommit(0, [&](const CommitRecord &rec) { dig.add(rec); });
    sys.start(kEntry, 0, {kEntry + 0x40000});

    cmd::Kernel &k = sys.kernel();
    FaultInjector inj(k);
    Watchdog wd(k, stallCycles);
    wd.setHeartbeat([&] {
        return sys.instret(0) + (sys.host().exited(0) ? 1 : 0);
    });

    uint64_t releaseAt = 0;
    uint64_t sincePoll = 0;
    auto t0 = std::chrono::steady_clock::now();
    auto stamp = [&] {
        r.instret = sys.instret(0);
        r.wallNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    try {
        while (k.cycleCount() < budget) {
            if (sys.host().allExited() || sys.host().failed())
                break;
            if (plan && k.cycleCount() == plan->cycle) {
                inj.apply(*plan);
                if (plan->type == FaultType::GuardStuck)
                    releaseAt = plan->cycle + plan->param;
            }
            if (releaseAt && k.cycleCount() == releaseAt) {
                inj.release(*plan);
                releaseAt = 0;
            }
            k.cycle();
            if (++sincePoll >= 64) {
                sincePoll = 0;
                wd.observe();
            }
        }
    } catch (const KernelFault &f) {
        r.outcome = f.kind() == cmd::FaultKind::Watchdog
                        ? FaultOutcome::Hang
                        : FaultOutcome::Detected;
        r.digest = dig.h;
        r.cycles = k.cycleCount();
        r.dump = f.describe();
        stamp();
        return r;
    }

    r.digest = dig.h;
    r.cycles = k.cycleCount();
    stamp();
    if (sys.host().failed()) {
        r.outcome = FaultOutcome::Detected;
        r.dump = strfmt("workload self-check failed (code %#llx)\n",
                        (unsigned long long)sys.host().failCode());
        return r;
    }
    if (!sys.host().allExited()) {
        r.outcome = FaultOutcome::Hang;
        r.dump = "cycle budget exhausted without exit\n" +
                 k.diagnosticReport();
        return r;
    }
    r.exited = true;
    r.exitCode = sys.host().exitCode(0);
    return r;
}

FaultOutcome
classify(const RunResultF &run, const RunResultF &golden)
{
    if (!run.exited)
        return run.outcome; // Detected or Hang, already decided
    if (run.exitCode == golden.exitCode && run.digest == golden.digest)
        return FaultOutcome::Masked;
    return FaultOutcome::SDC;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t nFaults = argc > 1 ? uint32_t(std::atoi(argv[1])) : 48;
    uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                             : 20260805ull;
    std::string outPath = argc > 3 ? argv[3] : "";

    Assembler prog = checksumWorkload();

    // Golden reference: one clean run, generous budget.
    RunResultF golden = runOne(prog, nullptr, 2000000, 20000);
    if (!golden.exited) {
        std::fprintf(stderr, "golden run did not exit cleanly\n");
        return 1;
    }
    std::printf("golden: %llu cycles, exit %#llx, commit digest %#llx\n",
                (unsigned long long)golden.cycles,
                (unsigned long long)golden.exitCode,
                (unsigned long long)golden.digest);

    // Plans target cycles across ~90% of the golden run; the budget
    // and the watchdog window scale with the clean runtime.
    const uint64_t maxCycle = golden.cycles * 9 / 10;
    const uint64_t budget = golden.cycles * 4 + 20000;
    const uint64_t stall = golden.cycles / 2 + 2000;

    const uint32_t nRfSlice = std::max(8u, nFaults / 2);
    auto campaign = [&](std::vector<FaultPlan> &plansOut) {
        // A throwaway elaborated instance supplies the state/channel/
        // rule tables the planner draws from (identical across
        // instances of one design).
        SystemConfig cfg = SystemConfig::riscyooB();
        cfg.cores = 1;
        System probe(cfg);
        probe.elaborate();
        FaultInjector planner(probe.kernel());
        plansOut = planner.planCampaign(seed, nFaults, maxCycle);
        // Focused register-file AVF slice: flips into the physical
        // register file, where silent data corruptions concentrate
        // (most other strikes are masked, detected, or hang).
        std::vector<FaultPlan> rf = planner.planCampaign(
            seed ^ 0x9e3779b97f4a7c15ull, nRfSlice, maxCycle,
            "hart0.prf");
        plansOut.insert(plansOut.end(), rf.begin(), rf.end());

        std::vector<RunResultF> runs;
        for (uint32_t i = 0; i < plansOut.size(); i++) {
            RunResultF r = runOne(prog, &plansOut[i], budget, stall);
            r.outcome = classify(r, golden);
            runs.push_back(std::move(r));
        }
        return runs;
    };

    std::vector<FaultPlan> plans, plans2;
    std::vector<RunResultF> runs = campaign(plans);
    std::vector<RunResultF> rerun = campaign(plans2);

    // Bit-reproducibility: the same seed must replay the same plans,
    // outcomes, and commit digests.
    bool reproducible = runs.size() == rerun.size();
    for (size_t i = 0; reproducible && i < runs.size(); i++) {
        reproducible = plans[i].describe() == plans2[i].describe() &&
                       runs[i].outcome == rerun[i].outcome &&
                       runs[i].digest == rerun[i].digest;
    }

    uint32_t counts[4] = {0, 0, 0, 0};
    std::filesystem::create_directories("fault_dumps");
    uint32_t dumpsWritten = 0;
    std::vector<JsonObject> rows;
    std::printf("\n%-4s %-44s %-9s %s\n", "#", "fault", "outcome",
                "cycles");
    for (size_t i = 0; i < runs.size(); i++) {
        const RunResultF &r = runs[i];
        counts[uint32_t(r.outcome)]++;
        std::printf("%-4zu %-44s %-9s %llu\n", i,
                    plans[i].describe().c_str(), toString(r.outcome),
                    (unsigned long long)r.cycles);
        if (!r.dump.empty() && dumpsWritten < 16) {
            std::ofstream d(strfmt("fault_dumps/fault_%02zu_%s.txt", i,
                                   toString(r.outcome)));
            d << plans[i].describe() << "\n\n" << r.dump;
            dumpsWritten++;
        }
        JsonObject row;
        row.put("index", uint64_t(i));
        row.put("fault", plans[i].describe());
        row.put("type", toString(plans[i].type));
        row.put("inject_cycle", plans[i].cycle);
        row.put("outcome", toString(r.outcome));
        row.put("cycles", r.cycles);
        putSimSpeed(row, r.instret, r.wallNs);
        row.putHex("commit_digest", r.digest);
        rows.push_back(std::move(row));
    }

    std::printf("\ncampaign: %zu faults (%u general + %u regfile) -> "
                "%u masked, %u detected, %u sdc, %u hang; "
                "reproducible=%s\n",
                runs.size(), nFaults, nRfSlice, counts[0], counts[1],
                counts[2], counts[3], reproducible ? "yes" : "NO");

    JsonObject config;
    config.put("workload", "checksum-selfcheck");
    config.put("system", "RiscyOO-B");
    config.put("seed", seed);
    config.put("faults_general", uint64_t(nFaults));
    config.put("faults_regfile_slice", uint64_t(nRfSlice));
    config.put("golden_cycles", golden.cycles);
    config.putHex("golden_digest", golden.digest);
    config.put("budget_cycles", budget);
    config.put("masked", uint64_t(counts[0]));
    config.put("detected", uint64_t(counts[1]));
    config.put("sdc", uint64_t(counts[2]));
    config.put("hang", uint64_t(counts[3]));
    config.put("reproducible", reproducible);
    writeBenchJson("faults", config, rows, outPath);

    return reproducible ? 0 : 1;
}
