/**
 * @file
 * Deterministic fault-injection campaign on the OOO core (see
 * core/harden.hh and DESIGN.md "Hardening & fault injection").
 *
 * A self-checking checksum workload runs once clean (the golden run),
 * then once per planned fault with exactly one fault injected at its
 * planned commit boundary. Each faulted run is classified against the
 * golden commit stream and exit code:
 *
 *   masked   - exited cleanly, commit stream and exit code identical
 *   detected - KernelFault (design error), or the workload's own
 *              checksum self-check fired the host Fail channel
 *   sdc      - exited "cleanly" with a divergent result (silent data
 *              corruption)
 *   hang     - forward-progress watchdog tripped, or the cycle budget
 *              ran out (deadlock/livelock)
 *
 * Four legs share one workload image: the general single-core slice,
 * a register-file AVF slice (flips into hart0.prf, where SDCs
 * concentrate), a quad-core slice on the PARSEC multicore config
 * (faults land anywhere in four cores + the coherent hierarchy), and
 * a single-core slice under SchedulerKind::Compiled — whose golden
 * run must match the EventDriven golden commit-for-commit, making the
 * campaign double as a scheduler-equivalence check.
 *
 * The campaign is bit-reproducible: plans are a pure function of
 * (seed, design), and the whole campaign is run twice and compared.
 * Crash dumps of the first few detected/hung runs land in
 * fault_dumps/; results go to BENCH_faults.json.
 *
 * Usage: fault_campaign [nFaults=48] [seed=20260805] [out.json]
 */
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "asmkit/assembler.hh"
#include "bench_common.hh"
#include "isa/csr.hh"

using namespace riscy;
using namespace riscy::bench;
using namespace riscy::asmkit;
using cmd::FaultInjector;
using cmd::FaultOutcome;
using cmd::FaultPlan;
using cmd::FaultType;
using cmd::KernelFault;
using cmd::strfmt;
using cmd::Watchdog;

namespace {

constexpr Addr kEntry = kDramBase;

/**
 * Fill-then-verify checksum kernel, engineered so every outcome class
 * is reachable: pass 1 fills 256 dwords from an LCG while summing in a
 * register; pass 2 re-sums from memory; a mismatch stores to the host
 * Fail channel (detected). A second accumulator (s5) stays live in a
 * register for the whole run and folds into the exit code without ever
 * being cross-checked -- corruption of unchecked-but-architecturally-
 * live state is exactly what silent data corruption is, so strikes on
 * it surface as SDC rather than detected.
 */
Assembler
checksumWorkload()
{
    Assembler a(kEntry);
    constexpr int kWords = 256;
    // Hart-aware: each hart works a private 4KB array region with a
    // per-hart LCG seed, so the one image runs 1- or 4-core unchanged
    // and every hart exits with its own checksum.
    a.csrr(t5, isa::kCsrMhartid);
    a.slli(t6, t5, 12);
    a.li(s0, kEntry + 0x10000); // array base...
    a.add(s0, s0, t6);          // ...plus 4KB per hart
    a.li(s1, 0);                // i
    a.li(s2, 0);                // sum1 (fill-time)
    a.li(s3, 0x1234);           // LCG state...
    a.add(s3, s3, t5);          // ...decorrelated per hart
    a.li(s5, 0xabcd);           // unchecked accumulator (SDC surface)
    a.slli(t6, t5, 4);
    a.xor_(s5, s5, t6);
    a.li(t0, 0x27bb2ee6);       // LCG multiplier
    a.li(t2, kWords);
    auto fill = a.newLabel();
    a.bind(fill);
    a.mul(s3, s3, t0);
    a.addi(s3, s3, 0x5b5);
    a.slli(t1, s1, 3);
    a.add(t1, t1, s0);
    a.sd(s3, 0, t1);
    a.add(s2, s2, s3);
    a.slli(t4, s5, 1);
    a.xor_(s5, t4, s1);
    a.addi(s1, s1, 1);
    a.blt(s1, t2, fill);

    a.li(s1, 0);
    a.li(s4, 0); // sum2 (verify-time)
    auto verify = a.newLabel();
    a.bind(verify);
    a.slli(t1, s1, 3);
    a.add(t1, t1, s0);
    a.ld(t3, 0, t1);
    a.add(s4, s4, t3);
    a.addi(s1, s1, 1);
    a.blt(s1, t2, verify);

    auto fail = a.newLabel();
    a.bne(s2, s4, fail);
    // exit(((sum1 ^ s5) & 0xffffff) | 1): both checksums are the
    // visible result, but only sum1 was cross-checked.
    a.xor_(a0, s2, s5);
    a.li(t1, 0xffffff);
    a.and_(a0, a0, t1);
    a.slli(a0, a0, 1);
    a.ori(a0, a0, 1);
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Exit));
    a.sd(a0, 0, t6);
    auto spin1 = a.newLabel();
    a.bind(spin1);
    a.j(spin1);

    a.bind(fail); // self-check mismatch: raise the Fail channel
    a.li(t6, kMmioBase + static_cast<Addr>(HostReg::Fail));
    a.sd(s2, 0, t6);
    auto spin2 = a.newLabel();
    a.bind(spin2);
    a.j(spin2);
    return a;
}

/** Order-sensitive FNV-1a over the architectural commit stream. */
struct CommitDigest
{
    uint64_t h = 1469598103934665603ull;
    void
    add(const CommitRecord &r)
    {
        auto mix = [this](uint64_t v) {
            for (int i = 0; i < 8; i++) {
                h ^= uint8_t(v >> (8 * i));
                h *= 1099511628211ull;
            }
        };
        mix(r.pc);
        mix(r.raw);
        if (r.hasRd && !r.volatileRd)
            mix(r.rdVal);
    }
};

struct RunResultF
{
    FaultOutcome outcome = FaultOutcome::Masked;
    uint64_t digest = 0;
    uint64_t exitCode = 0;
    uint64_t cycles = 0;
    uint64_t instret = 0;
    uint64_t wallNs = 0;
    bool exited = false;
    std::string dump; ///< crash-dump body for detected/hang runs
};

const char *
schedName(cmd::SchedulerKind k)
{
    switch (k) {
      case cmd::SchedulerKind::Exhaustive: return "exhaustive";
      case cmd::SchedulerKind::EventDriven: return "event";
      case cmd::SchedulerKind::Parallel: return "parallel";
      case cmd::SchedulerKind::Compiled: return "compiled";
    }
    return "?";
}

/** Leg geometry: which machine a run (and its plans) targets. */
SystemConfig
legConfig(uint32_t cores, cmd::SchedulerKind sched)
{
    SystemConfig cfg = cores > 1 ? SystemConfig::multicore(/*tso=*/true)
                                 : SystemConfig::riscyooB();
    cfg.cores = cores;
    cfg.scheduler = sched;
    return cfg;
}

/**
 * One run of the workload with at most one fault injected. The drive
 * loop applies the plan at its commit boundary, releases GuardStuck
 * windows, and polls a heartbeat watchdog. All harts' commit streams
 * and exit codes fold into one digest, so any hart's divergence is a
 * campaign divergence.
 */
RunResultF
runOne(const Assembler &prog, const FaultPlan *plan, uint64_t budget,
       uint64_t stallCycles, uint32_t cores, cmd::SchedulerKind sched)
{
    System sys(legConfig(cores, sched));
    const_cast<Assembler &>(prog).load(sys.mem(), kEntry);
    sys.elaborate();

    RunResultF r;
    std::vector<CommitDigest> dig(cores);
    for (uint32_t h = 0; h < cores; h++)
        sys.setOnCommit(
            h, [&dig, h](const CommitRecord &rec) { dig[h].add(rec); });
    std::vector<Addr> sp;
    for (uint32_t h = 0; h < cores; h++)
        sp.push_back(kEntry + 0x40000 + h * 0x10000);
    sys.start(kEntry, 0, sp);

    cmd::Kernel &k = sys.kernel();
    FaultInjector inj(k);
    Watchdog wd(k, stallCycles);
    wd.setHeartbeat([&] {
        uint64_t hb = 0;
        for (uint32_t h = 0; h < cores; h++)
            hb += sys.instret(h) + (sys.host().exited(h) ? 1 : 0);
        return hb;
    });

    uint64_t releaseAt = 0;
    uint64_t sincePoll = 0;
    auto t0 = std::chrono::steady_clock::now();
    auto stamp = [&] {
        r.instret = 0;
        for (uint32_t h = 0; h < cores; h++)
            r.instret += sys.instret(h);
        r.wallNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    auto foldDigest = [&] {
        uint64_t d = dig[0].h;
        for (uint32_t h = 1; h < cores; h++)
            d = d * 1099511628211ull ^ dig[h].h;
        return d;
    };
    try {
        while (k.cycleCount() < budget) {
            if (sys.host().allExited() || sys.host().failed())
                break;
            if (plan && k.cycleCount() == plan->cycle) {
                inj.apply(*plan);
                if (plan->type == FaultType::GuardStuck)
                    releaseAt = plan->cycle + plan->param;
            }
            if (releaseAt && k.cycleCount() == releaseAt) {
                inj.release(*plan);
                releaseAt = 0;
            }
            k.cycle();
            if (++sincePoll >= 64) {
                sincePoll = 0;
                wd.observe();
            }
        }
    } catch (const KernelFault &f) {
        r.outcome = f.kind() == cmd::FaultKind::Watchdog
                        ? FaultOutcome::Hang
                        : FaultOutcome::Detected;
        r.digest = foldDigest();
        r.cycles = k.cycleCount();
        r.dump = f.describe();
        stamp();
        return r;
    }

    r.digest = foldDigest();
    r.cycles = k.cycleCount();
    stamp();
    if (sys.host().failed()) {
        r.outcome = FaultOutcome::Detected;
        r.dump = strfmt("workload self-check failed (code %#llx)\n",
                        (unsigned long long)sys.host().failCode());
        return r;
    }
    if (!sys.host().allExited()) {
        r.outcome = FaultOutcome::Hang;
        r.dump = "cycle budget exhausted without exit\n" +
                 k.diagnosticReport();
        return r;
    }
    r.exited = true;
    r.exitCode = sys.host().exitCode(0);
    // Secondary harts' exit codes ride the digest, so a divergent code
    // on any hart declassifies "masked" even when hart 0 agrees.
    for (uint32_t h = 1; h < cores; h++)
        r.digest = r.digest * 1099511628211ull ^ sys.host().exitCode(h);
    return r;
}

FaultOutcome
classify(const RunResultF &run, const RunResultF &golden)
{
    if (!run.exited)
        return run.outcome; // Detected or Hang, already decided
    if (run.exitCode == golden.exitCode && run.digest == golden.digest)
        return FaultOutcome::Masked;
    return FaultOutcome::SDC;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t nFaults = argc > 1 ? uint32_t(std::atoi(argv[1])) : 48;
    uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                             : 20260805ull;
    std::string outPath = argc > 3 ? argv[3] : "";

    Assembler prog = checksumWorkload();

    // Golden references: one clean run per machine geometry, generous
    // budget. The Compiled golden must match the EventDriven golden
    // commit-for-commit — the campaign doubles as a scheduler-
    // equivalence check.
    using cmd::SchedulerKind;
    struct LegSpec {
        const char *name;
        uint32_t cores;
        SchedulerKind sched;
        uint32_t n;
        uint64_t seed;
        const char *filter;
        RunResultF golden;
    };
    const uint32_t nRfSlice = std::max(8u, nFaults / 2);
    const uint32_t nSmall = std::max(8u, nFaults / 4);
    std::vector<LegSpec> legs = {
        {"general", 1, SchedulerKind::EventDriven, nFaults, seed, "", {}},
        {"regfile", 1, SchedulerKind::EventDriven, nRfSlice,
         seed ^ 0x9e3779b97f4a7c15ull, "hart0.prf", {}},
        {"quad", 4, SchedulerKind::EventDriven, nSmall,
         seed ^ 0x71adc0deull, "", {}},
        {"compiled", 1, SchedulerKind::Compiled, nSmall,
         seed ^ 0xc09a11edull, "", {}},
    };
    for (LegSpec &leg : legs) {
        leg.golden = runOne(prog, nullptr, 4000000, 40000, leg.cores,
                            leg.sched);
        if (!leg.golden.exited) {
            std::fprintf(stderr, "%s golden run did not exit cleanly\n",
                         leg.name);
            return 1;
        }
        std::printf("golden[%-8s]: %llu cycles, exit %#llx, "
                    "commit digest %#llx\n",
                    leg.name, (unsigned long long)leg.golden.cycles,
                    (unsigned long long)leg.golden.exitCode,
                    (unsigned long long)leg.golden.digest);
    }
    const bool schedEquiv =
        legs[3].golden.digest == legs[0].golden.digest &&
        legs[3].golden.exitCode == legs[0].golden.exitCode;
    if (!schedEquiv)
        std::fprintf(stderr, "Compiled golden DIVERGES from "
                             "EventDriven golden\n");

    auto campaign = [&](std::vector<FaultPlan> &plansOut,
                        std::vector<uint32_t> &legOut) {
        std::vector<RunResultF> runs;
        for (uint32_t li = 0; li < legs.size(); li++) {
            const LegSpec &leg = legs[li];
            // Plans target cycles across ~90% of the leg's golden run;
            // budget and watchdog window scale with its clean runtime.
            const uint64_t maxCycle = leg.golden.cycles * 9 / 10;
            const uint64_t budget = leg.golden.cycles * 4 + 20000;
            const uint64_t stall = leg.golden.cycles / 2 + 2000;
            // A throwaway elaborated instance supplies the state/
            // channel/rule tables the planner draws from (identical
            // across instances of one design geometry).
            System probe(legConfig(leg.cores, leg.sched));
            probe.elaborate();
            FaultInjector planner(probe.kernel());
            std::vector<FaultPlan> plans = planner.planCampaign(
                leg.seed, leg.n, maxCycle, leg.filter);
            for (const FaultPlan &p : plans) {
                RunResultF r = runOne(prog, &p, budget, stall,
                                      leg.cores, leg.sched);
                r.outcome = classify(r, leg.golden);
                runs.push_back(std::move(r));
                plansOut.push_back(p);
                legOut.push_back(li);
            }
        }
        return runs;
    };

    std::vector<FaultPlan> plans, plans2;
    std::vector<uint32_t> legIdx, legIdx2;
    std::vector<RunResultF> runs = campaign(plans, legIdx);
    std::vector<RunResultF> rerun = campaign(plans2, legIdx2);

    // Bit-reproducibility: the same seed must replay the same plans,
    // outcomes, and commit digests.
    bool reproducible = runs.size() == rerun.size();
    for (size_t i = 0; reproducible && i < runs.size(); i++) {
        reproducible = plans[i].describe() == plans2[i].describe() &&
                       runs[i].outcome == rerun[i].outcome &&
                       runs[i].digest == rerun[i].digest;
    }

    uint32_t counts[4] = {0, 0, 0, 0};
    std::filesystem::create_directories("fault_dumps");
    uint32_t dumpsWritten = 0;
    std::vector<JsonObject> rows;
    std::printf("\n%-4s %-8s %-44s %-9s %s\n", "#", "leg", "fault",
                "outcome", "cycles");
    for (size_t i = 0; i < runs.size(); i++) {
        const RunResultF &r = runs[i];
        const LegSpec &leg = legs[legIdx[i]];
        counts[uint32_t(r.outcome)]++;
        std::printf("%-4zu %-8s %-44s %-9s %llu\n", i, leg.name,
                    plans[i].describe().c_str(), toString(r.outcome),
                    (unsigned long long)r.cycles);
        if (!r.dump.empty() && dumpsWritten < 16) {
            std::ofstream d(strfmt("fault_dumps/fault_%02zu_%s.txt", i,
                                   toString(r.outcome)));
            d << leg.name << " " << plans[i].describe() << "\n\n"
              << r.dump;
            dumpsWritten++;
        }
        JsonObject row;
        row.put("index", uint64_t(i));
        row.put("leg", leg.name);
        row.put("cores", uint64_t(leg.cores));
        row.put("scheduler", schedName(leg.sched));
        row.put("fault", plans[i].describe());
        row.put("type", toString(plans[i].type));
        row.put("inject_cycle", plans[i].cycle);
        row.put("outcome", toString(r.outcome));
        row.put("cycles", r.cycles);
        putSimSpeed(row, r.instret, r.wallNs);
        row.putHex("commit_digest", r.digest);
        rows.push_back(std::move(row));
    }

    std::printf("\ncampaign: %zu faults (%u general + %u regfile + "
                "%u quad + %u compiled) -> %u masked, %u detected, "
                "%u sdc, %u hang; reproducible=%s, "
                "scheduler-equivalent=%s\n",
                runs.size(), nFaults, nRfSlice, nSmall, nSmall,
                counts[0], counts[1], counts[2], counts[3],
                reproducible ? "yes" : "NO", schedEquiv ? "yes" : "NO");

    JsonObject config;
    config.put("workload", "checksum-selfcheck");
    config.put("system", "RiscyOO-B / quad-TSO");
    config.put("seed", seed);
    config.put("faults_general", uint64_t(nFaults));
    config.put("faults_regfile_slice", uint64_t(nRfSlice));
    config.put("faults_quad_slice", uint64_t(nSmall));
    config.put("faults_compiled_slice", uint64_t(nSmall));
    config.put("golden_cycles", legs[0].golden.cycles);
    config.putHex("golden_digest", legs[0].golden.digest);
    config.put("golden_cycles_quad", legs[2].golden.cycles);
    config.putHex("golden_digest_quad", legs[2].golden.digest);
    config.put("masked", uint64_t(counts[0]));
    config.put("detected", uint64_t(counts[1]));
    config.put("sdc", uint64_t(counts[2]));
    config.put("hang", uint64_t(counts[3]));
    config.put("reproducible", reproducible);
    config.put("scheduler_equivalent", schedEquiv);
    writeBenchJson("faults", config, rows, outPath);

    return reproducible && schedEquiv ? 0 : 1;
}
