/**
 * @file
 * Observability overhead ablation + trace generation.
 *
 * Modes (one binary so CI runs a single step):
 *
 *  1. Overhead gate (default): run one SPEC stand-in on RiscyOO-B
 *     three ways — no observer at all, observer installed with every
 *     sink off (the "tracing disabled" configuration the hooks must
 *     keep near-free), and everything on (pipeline + timeline + CPI).
 *     Best-of-N wall times; exits nonzero when the disabled-observer
 *     run is more than --limit percent (default 2) slower than the
 *     no-observer baseline. The full-tracing overhead is reported but
 *     not gated (it is allowed to cost what it costs).
 *
 *  2. --trace <dir>: additionally a short (cycle-capped) fig17-class
 *     RiscyOO-B run with the Konata and Perfetto sinks on, writing
 *     <dir>/trace.kanata and <dir>/trace_timeline.json for
 *     scripts/validate_trace.py and the CI artifact upload. The cap
 *     keeps the artifacts CI-sized; the overhead runs above record
 *     in memory only (empty sink paths) so file IO never skews the
 *     wall-clock comparison.
 *
 * Results land in BENCH_obs.json (shared schema, see bench_common.hh)
 * with the CPI stack of the fully-instrumented run embedded.
 */
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

namespace {

constexpr uint64_t kMaxCycles = 400000000;
constexpr int kReps = 3;

struct Timed {
    RunResult r;
    uint64_t bestNs = ~0ull;
};

Timed
measure(const SystemConfig &cfg, const workloads::Workload &w)
{
    Timed t;
    for (int i = 0; i < kReps; i++) {
        SystemConfig c = cfg;
        System sys(c);
        workloads::Image img = w.build(sys, 1);
        sys.elaborate();
        RunResult r;
        r.cycles = workloads::runToCompletion(sys, img, kMaxCycles);
        r.instret = sys.instret(0);
        uint64_t ns = sys.runWallNs();
        sys.writeTraces();
        if (const obs::CpiStack *cp = sys.cpi(0))
            r.cpiJson = cp->json(r.instret);
        if (ns < t.bestNs) {
            t.bestNs = ns;
            t.r = r;
        }
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    double limitPct = 2.0;
    std::string traceDir;
    std::string wlName = "bzip2";
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--limit") && i + 1 < argc)
            limitPct = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            traceDir = argv[++i];
        else if (!std::strcmp(argv[i], "--workload") && i + 1 < argc)
            wlName = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--limit pct] [--trace dir] "
                         "[--workload name]\n",
                         argv[0]);
            return 2;
        }
    }

    const workloads::Workload *wl = nullptr;
    auto specs = workloads::specWorkloads();
    for (const auto &w : specs)
        if (w.name == wlName)
            wl = &w;
    if (!wl) {
        std::fprintf(stderr, "unknown workload %s\n", wlName.c_str());
        return 2;
    }

    SystemConfig base = SystemConfig::riscyooB();
    SystemConfig hubOff = base;
    // Observer installed, every sink off: statsResetAtCycle forces the
    // hub in (and exercises the warmup reset path) without enabling
    // any recording. This is the configuration the 2% gate protects.
    hubOff.statsResetAtCycle = 1000;
    SystemConfig allOn = base;
    allOn.obs.pipeline = true;
    allOn.obs.timeline = true;
    allOn.obs.cpi = true;
    allOn.obs.pipelinePath.clear(); // record only; no file IO in the
    allOn.obs.timelinePath.clear(); // timed comparison

    printHeader("obs ablation (" + wlName + ")",
                {"cycles", "wall-ms", "overhead-%"});
    Timed off = measure(base, *wl);
    Timed dis = measure(hubOff, *wl);
    Timed on = measure(allOn, *wl);
    auto pct = [&](const Timed &t) {
        return 100.0 * (double(t.bestNs) / double(off.bestNs) - 1.0);
    };
    printRow("no-observer",
             {double(off.r.cycles), double(off.bestNs) / 1e6, 0.0});
    printRow("sinks-off",
             {double(dis.r.cycles), double(dis.bestNs) / 1e6, pct(dis)});
    printRow("all-sinks",
             {double(on.r.cycles), double(on.bestNs) / 1e6, pct(on)});

    // Observability must never change the simulated machine.
    if (off.r.cycles != dis.r.cycles || off.r.cycles != on.r.cycles ||
        off.r.instret != on.r.instret) {
        std::fprintf(stderr,
                     "FAIL: observability changed timing "
                     "(cycles %llu/%llu/%llu)\n",
                     (unsigned long long)off.r.cycles,
                     (unsigned long long)dis.r.cycles,
                     (unsigned long long)on.r.cycles);
        return 1;
    }

    JsonObject cfg;
    cfg.put("workload", wlName)
        .put("config", base.name)
        .put("reps", uint64_t(kReps))
        .put("limit_pct", limitPct);
    std::vector<JsonObject> rows;
    auto row = [&](const char *mode, const Timed &t, double ov) {
        JsonObject o;
        o.put("mode", mode)
            .put("cycles", t.r.cycles)
            .put("instret", t.r.instret)
            .put("wall_ns", t.bestNs)
            .put("ipc", t.r.ipc())
            .put("overhead_pct", ov);
        putSimSpeed(o, t.r.instret, t.bestNs);
        if (!t.r.cpiJson.empty())
            o.putRaw("cpi", t.r.cpiJson);
        rows.push_back(o);
    };
    row("no-observer", off, 0.0);
    row("sinks-off", dis, pct(dis));
    row("all-sinks", on, pct(on));
    writeBenchJson("obs", cfg, rows);

    if (!traceDir.empty()) {
        // Short capped run with the file sinks on: CI-sized traces.
        constexpr uint64_t kTraceCycles = 10000;
        SystemConfig tc = allOn;
        tc.obs.pipelinePath = traceDir + "/trace.kanata";
        tc.obs.timelinePath = traceDir + "/trace_timeline.json";
        System sys(tc);
        workloads::Image img = wl->build(sys, 1);
        sys.elaborate();
        sys.start(img.entry, img.satp, img.stacks);
        sys.run(kTraceCycles); // partial run: traces, not results
        if (!sys.writeTraces()) {
            std::fprintf(stderr, "FAIL: trace export to %s failed\n",
                         traceDir.c_str());
            return 1;
        }
        std::printf("wrote %s/trace.kanata and %s/trace_timeline.json "
                    "(%llu cycles)\n",
                    traceDir.c_str(), traceDir.c_str(),
                    (unsigned long long)sys.kernel().cycleCount());
    }

    if (pct(dis) > limitPct) {
        std::fprintf(stderr,
                     "FAIL: sinks-off observer overhead %.2f%% exceeds "
                     "the %.2f%% gate\n",
                     pct(dis), limitPct);
        return 1;
    }
    std::printf("sinks-off overhead %.2f%% within the %.2f%% gate\n",
                pct(dis), limitPct);
    return 0;
}
