/**
 * @file
 * Paper Fig. 18: commercial ARM cores (A57 3-wide, Denver 7-wide)
 * normalized to RiscyOO-T+. We stand in wider configurations of our
 * own core (see DESIGN.md substitutions). Shape: the wide cores win
 * on dense/low-miss benchmarks (hmmer, h264ref) and on streaming
 * (libquantum, via prefetch), while T+ catches up or wins on the
 * TLB-bound pointer chasers (mcf, astar, omnetpp).
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto specs = workloads::specWorkloads();
    printHeader("Fig. 18: wide stand-ins normalized to RiscyOO-T+",
                {"Wide-3", "Wide-7"});
    std::vector<double> g3, g7;
    for (const auto &w : specs) {
        RunResult t = runOn(SystemConfig::riscyooTPlus(), w);
        RunResult w3 = runOn(SystemConfig::wide3(), w);
        RunResult w7 = runOn(SystemConfig::wide7(), w);
        double n3 = double(t.cycles) / w3.cycles;
        double n7 = double(t.cycles) / w7.cycles;
        g3.push_back(n3);
        g7.push_back(n7);
        printRow(w.name, {n3, n7});
    }
    printRow("geo-mean", {geomean(g3), geomean(g7)});
    std::printf("(paper: A57 1.34x, Denver 1.45x of T+; T+ wins "
                "mcf/astar/omnetpp)\n");
    return 0;
}
