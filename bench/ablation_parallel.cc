/**
 * @file
 * Parallel-scheduler ablation: the quad-core system (the Fig. 20
 * PARSEC setup) running a data-parallel kernel under
 *
 *   - exhaustive      (reference sequential scheduler)
 *   - event-driven    (PR 1's sensitivity-tracked sequential walk)
 *   - compiled        (elaboration-time static schedule, PR 7)
 *   - parallel x1/2/4 (domain-partitioned execution, PR 2)
 *
 * All five runs replay the same fixed cycle window from one
 * start-of-time snapshot of a single System instance (snapshot digests
 * are only comparable within one instance — struct padding is
 * instance-dependent — and PhysMem/host state are copied back before
 * every replay since the workload stores to memory). Any digest
 * divergence is a correctness failure and exits non-zero.
 *
 * The headline number is wall-clock speedup of parallel x4 over the
 * sequential event-driven scheduler on the quad-core design (expected
 * >= 2x on a host with >= 4 hardware threads; the emitted
 * BENCH_parallel.json records the host's thread count so results from
 * starved hosts are interpretable).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

namespace {

/** FNV-1a over a snapshot buffer: the architectural-state digest. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

struct Mode {
    std::string name;
    cmd::SchedulerKind kind;
    uint32_t threads; ///< parallel only; 0 otherwise
};

struct Result {
    std::string name;
    uint64_t wallNs = 0;
    uint64_t stateDigest = 0;
    uint64_t instret = 0; ///< summed over harts, this run only
    uint64_t barrierWaitNs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    uint64_t cycles = 200000;
    for (int i = 1; i < argc; i++) {
        if (std::string(argv[i]) == "--ci")
            ci = true;
        else
            cycles = strtoull(argv[i], nullptr, 0);
    }

    // Quad-core TSO system running the data-parallel "blackscholes"
    // stand-in with one worker thread per hart.
    SystemConfig cfg = SystemConfig::multicore(true);
    cfg.scheduler = cmd::SchedulerKind::Exhaustive;
    System sys(cfg);
    auto ws = workloads::parsecWorkloads();
    const workloads::Workload &w = ws.front(); // blackscholes
    workloads::Image img = w.build(sys, cfg.cores);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);

    const uint32_t domains = sys.kernel().domainCount();
    std::printf("design partitioned into %u domains "
                "(expect cores + memory = %u)\n",
                domains, cfg.cores + 1);

    // Start-of-time state: kernel snapshot + memory + host device.
    const std::vector<uint8_t> snap0 = sys.kernel().snapshot();
    const PhysMem mem0 = sys.mem();

    const std::vector<Mode> modes = {
        {"exhaustive", cmd::SchedulerKind::Exhaustive, 0},
        {"event", cmd::SchedulerKind::EventDriven, 0},
        {"compiled", cmd::SchedulerKind::Compiled, 0},
        {"parallel-1", cmd::SchedulerKind::Parallel, 1},
        {"parallel-2", cmd::SchedulerKind::Parallel, 2},
        {"parallel-4", cmd::SchedulerKind::Parallel, 4},
    };

    std::vector<Result> results;
    for (const Mode &m : modes) {
        sys.kernel().restore(snap0);
        sys.mem() = mem0;
        sys.host().reset();
        sys.kernel().setParallelThreads(m.threads);
        sys.kernel().setScheduler(m.kind);

        uint64_t instret0 = 0;
        for (uint32_t i = 0; i < cfg.cores; i++)
            instret0 += sys.instret(i);
        uint64_t barrier0 = sys.kernel().barrierWaitNs();

        auto t0 = std::chrono::steady_clock::now();
        sys.kernel().run(cycles);
        auto t1 = std::chrono::steady_clock::now();

        Result r;
        r.name = m.name;
        r.wallNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        r.stateDigest = digest(sys.kernel().snapshot());
        for (uint32_t i = 0; i < cfg.cores; i++)
            r.instret += sys.instret(i);
        r.instret -= instret0; // stats accumulate across replays
        r.barrierWaitNs = sys.kernel().barrierWaitNs() - barrier0;
        results.push_back(r);

        std::printf("%-12s %10.1f ms  digest %#018llx  instret %llu\n",
                    r.name.c_str(), double(r.wallNs) * 1e-6,
                    (unsigned long long)r.stateDigest,
                    (unsigned long long)r.instret);
    }

    bool ok = domains == cfg.cores + 1;
    if (!ok)
        std::printf("UNEXPECTED domain count %u\n", domains);
    for (const Result &r : results) {
        if (r.stateDigest != results[0].stateDigest ||
            r.instret != results[0].instret) {
            std::printf("DIVERGENCE: %s does not match exhaustive\n",
                        r.name.c_str());
            ok = false;
        }
    }

    const Result &ev = results[1];
    std::printf("\n%-12s %10s %10s\n", "mode", "wall ms", "speedup");
    for (const Result &r : results) {
        std::printf("%-12s %10.1f %9.2fx\n", r.name.c_str(),
                    double(r.wallNs) * 1e-6,
                    double(ev.wallNs) / double(r.wallNs));
    }
    std::printf("(speedup is vs the sequential event-driven scheduler; "
                "host has %u hardware threads)\n",
                std::thread::hardware_concurrency());

    JsonObject jcfg;
    jcfg.put("system", cfg.name)
        .put("workload", w.name)
        .put("cores", cfg.cores)
        .put("cycles", cycles)
        .put("domains", domains);
    std::vector<JsonObject> out;
    for (const Result &r : results) {
        JsonObject o;
        o.put("mode", r.name)
            .put("cycles", cycles)
            .put("instret", r.instret)
            .put("wall_ns", r.wallNs)
            .put("barrier_wait_ns", r.barrierWaitNs)
            .put("speedup_vs_event", double(ev.wallNs) / double(r.wallNs))
            .putHex("digest", r.stateDigest)
            .put("digest_match", r.stateDigest == results[0].stateDigest);
        riscy::bench::putSimSpeed(o, r.instret, r.wallNs);
        out.push_back(std::move(o));
    }
    bool wrote = writeBenchJson("parallel", jcfg, out);
    if (ci && !wrote) {
        std::fprintf(stderr, "GATE: --ci requires BENCH_parallel.json "
                             "to be written\n");
        ok = false;
    }

    return ok ? 0 : 1;
}
