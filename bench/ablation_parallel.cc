/**
 * @file
 * Parallel-scheduler ablation: the quad-core system (the Fig. 20
 * PARSEC setup) running a data-parallel kernel under
 *
 *   - exhaustive      (reference sequential scheduler)
 *   - event-driven    (PR 1's sensitivity-tracked sequential walk)
 *   - compiled        (elaboration-time static schedule, PR 7)
 *   - parallel        (domain-partitioned execution, PR 2) swept over
 *                     lookahead {1, 2, 4, 8, fifo-min} x threads
 *                     {1, 2, 4} — the multi-cycle lookahead PDES
 *                     ablation: how much does replacing the per-cycle
 *                     barrier with latency-bounded sync windows buy?
 *
 * All runs replay the same fixed cycle window from one start-of-time
 * snapshot of a single System instance (snapshot digests are only
 * comparable within one instance — struct padding is
 * instance-dependent — and PhysMem/host state are copied back before
 * every replay since the workload stores to memory). Any digest
 * divergence is a correctness failure and exits non-zero.
 *
 * Gates (--ci):
 *   g1 digest      every row's state digest + retired-instruction
 *                  count matches the exhaustive reference (always on)
 *   g2 sync-count  the fifo-min rows synchronize at least 4x less
 *                  than once per simulated cycle (always on)
 *   g3 window-win  parallel-4 at fifo-min lookahead is strictly
 *                  faster than parallel-4 at lookahead 1 (the old
 *                  per-cycle barrier), re-measured once on failure to
 *                  de-flake; barrier overhead is host-thread-count
 *                  independent, so this gate is always on
 *   g4 speedup     parallel-4 beats the sequential event scheduler —
 *                  a genuine parallelism claim, SKIPPED when the host
 *                  has fewer hardware threads than the row requested
 *                  (a 1-thread CI runner cannot parallelize anything)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "asmkit/assembler.hh"
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

namespace {

/** FNV-1a over a snapshot buffer: the architectural-state digest. */
uint64_t
digest(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

struct Mode {
    std::string name;
    cmd::SchedulerKind kind;
    uint32_t threads;   ///< parallel only; 0 otherwise
    uint32_t lookahead; ///< parallel only; 0 = auto (fifo-min)
};

struct Result {
    std::string name;
    uint32_t threads = 0;
    uint32_t lookahead = 0;    ///< requested cap (0 = fifo-min)
    uint32_t effLookahead = 0; ///< window width actually used
    uint64_t wallNs = 0;
    uint64_t stateDigest = 0;
    uint64_t instret = 0; ///< summed over harts, this run only
    uint64_t barrierWaitNs = 0;
    uint64_t syncEpochs = 0;
    uint64_t maxDomainSyncWaitNs = 0;
    double syncsPerCycle = 0;
};

Result
runMode(System &sys, const Mode &m, const std::vector<uint8_t> &snap0,
        const PhysMem &mem0, uint32_t cores, uint64_t cycles)
{
    sys.kernel().restore(snap0);
    sys.mem() = mem0;
    sys.host().reset();
    sys.kernel().setParallelThreads(m.threads);
    sys.kernel().setLookahead(m.lookahead);
    sys.kernel().setScheduler(m.kind);

    uint64_t instret0 = 0;
    for (uint32_t i = 0; i < cores; i++)
        instret0 += sys.instret(i);
    uint64_t barrier0 = sys.kernel().barrierWaitNs();
    uint64_t syncs0 = sys.kernel().syncEpochs();
    std::vector<uint64_t> dwait0;
    for (const auto &d : sys.kernel().report().domainLines)
        dwait0.push_back(d.syncWaitNs);

    auto t0 = std::chrono::steady_clock::now();
    sys.kernel().run(cycles);
    auto t1 = std::chrono::steady_clock::now();

    Result r;
    r.name = m.name;
    r.threads = m.threads;
    r.lookahead = m.lookahead;
    r.effLookahead = sys.kernel().effectiveLookahead();
    r.wallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    r.stateDigest = digest(sys.kernel().snapshot());
    for (uint32_t i = 0; i < cores; i++)
        r.instret += sys.instret(i);
    r.instret -= instret0; // stats accumulate across replays
    r.barrierWaitNs = sys.kernel().barrierWaitNs() - barrier0;
    r.syncEpochs = sys.kernel().syncEpochs() - syncs0;
    r.syncsPerCycle = double(r.syncEpochs) / double(cycles);
    auto lines = sys.kernel().report().domainLines;
    for (size_t i = 0; i < lines.size(); i++) {
        uint64_t w = lines[i].syncWaitNs - (i < dwait0.size() ? dwait0[i] : 0);
        r.maxDomainSyncWaitNs = std::max(r.maxDomainSyncWaitNs, w);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    uint64_t cycles = 200000;
    for (int i = 1; i < argc; i++) {
        if (std::string(argv[i]) == "--ci")
            ci = true;
        else
            cycles = strtoull(argv[i], nullptr, 0);
    }
    const uint32_t hostThreads = std::thread::hardware_concurrency();

    // Quad-core TSO system running the data-parallel "blackscholes"
    // stand-in with one worker thread per hart.
    SystemConfig cfg = SystemConfig::multicore(true);
    cfg.scheduler = cmd::SchedulerKind::Exhaustive;
    System sys(cfg);
    auto ws = workloads::parsecWorkloads();
    const workloads::Workload &w = ws.front(); // blackscholes
    workloads::Image img = w.build(sys, cfg.cores);
    sys.elaborate();
    sys.start(img.entry, img.satp, img.stacks);

    const uint32_t domains = sys.kernel().domainCount();
    const uint32_t fifoMin = sys.kernel().fifoMinLookahead();
    std::printf("design partitioned into %u domains "
                "(expect cores + memory = %u); fifo-min lookahead %u\n",
                domains, cfg.cores + 1, fifoMin);

    // Start-of-time state: kernel snapshot + memory + host device.
    const std::vector<uint8_t> snap0 = sys.kernel().snapshot();
    const PhysMem mem0 = sys.mem();

    std::vector<Mode> modes = {
        {"exhaustive", cmd::SchedulerKind::Exhaustive, 0, 0},
        {"event", cmd::SchedulerKind::EventDriven, 0, 0},
        {"compiled", cmd::SchedulerKind::Compiled, 0, 0},
    };
    // The PDES sweep: lookahead cap {1, 2, 4, 8, fifo-min(=0)} x
    // threads {1, 2, 4}. "parallel-N" (no suffix) is the fifo-min
    // auto default — the name the committed baseline tracks.
    for (uint32_t t : {1u, 2u, 4u}) {
        for (uint32_t la : {1u, 2u, 4u, 8u, 0u}) {
            std::string name = "parallel-" + std::to_string(t);
            if (la)
                name += "-la" + std::to_string(la);
            modes.push_back({name, cmd::SchedulerKind::Parallel, t, la});
        }
    }

    std::vector<Result> results;
    for (const Mode &m : modes) {
        Result r = runMode(sys, m, snap0, mem0, cfg.cores, cycles);
        results.push_back(r);
        std::printf("%-16s %10.1f ms  digest %#018llx  instret %llu"
                    "  syncs/cyc %.3f\n",
                    r.name.c_str(), double(r.wallNs) * 1e-6,
                    (unsigned long long)r.stateDigest,
                    (unsigned long long)r.instret, r.syncsPerCycle);
    }

    auto find = [&](const std::string &n) -> Result & {
        for (Result &r : results)
            if (r.name == n)
                return r;
        std::fprintf(stderr, "missing row %s\n", n.c_str());
        std::exit(1);
    };

    bool ok = domains == cfg.cores + 1;
    if (!ok)
        std::printf("UNEXPECTED domain count %u\n", domains);

    // g1: digests + instret — bit-identical semantics across every
    // scheduler, thread count, and lookahead.
    for (const Result &r : results) {
        if (r.stateDigest != results[0].stateDigest ||
            r.instret != results[0].instret) {
            std::printf("DIVERGENCE: %s does not match exhaustive\n",
                        r.name.c_str());
            ok = false;
        }
    }

    // g2: at fifo-min lookahead the barrier count must drop >= 4x
    // below one-per-cycle (the structural claim of this ablation).
    for (const Result &r : results) {
        if (r.threads == 0 || r.lookahead != 0)
            continue;
        if (r.syncEpochs * 4 > cycles) {
            std::printf("GATE g2: %s ran %llu sync epochs over %llu "
                        "cycles (< 4x reduction)\n",
                        r.name.c_str(), (unsigned long long)r.syncEpochs,
                        (unsigned long long)cycles);
            ok = false;
        }
    }

    // g3: windows beat the per-cycle barrier on wall clock for the
    // headline parallel-4 row. Barrier *overhead* dominates on any
    // host, so this is not skipped on starved runners; re-measure
    // both rows once before failing (single-run wall clocks on a
    // shared host are noisy).
    {
        Result &la1 = find("parallel-4-la1");
        Result &lamin = find("parallel-4");
        if (lamin.wallNs >= la1.wallNs) {
            std::printf("g3 re-measure: la-min %.1f ms vs la-1 %.1f ms\n",
                        double(lamin.wallNs) * 1e-6,
                        double(la1.wallNs) * 1e-6);
            la1 = runMode(sys, {"parallel-4-la1",
                                cmd::SchedulerKind::Parallel, 4, 1},
                          snap0, mem0, cfg.cores, cycles);
            lamin = runMode(sys, {"parallel-4",
                                  cmd::SchedulerKind::Parallel, 4, 0},
                            snap0, mem0, cfg.cores, cycles);
            if (lamin.wallNs >= la1.wallNs) {
                std::printf("GATE g3: parallel-4 fifo-min (%.1f ms) not "
                            "faster than lookahead-1 (%.1f ms)\n",
                            double(lamin.wallNs) * 1e-6,
                            double(la1.wallNs) * 1e-6);
                ok = false;
            }
        }
    }

    // g4: real parallel speedup over the sequential event scheduler —
    // only meaningful when the host can actually run the threads.
    const Result &ev = find("event");
    for (const Result &r : results) {
        if (r.threads == 0 || r.lookahead != 0 || r.threads < 2)
            continue;
        if (hostThreads < r.threads) {
            std::printf("g4 skipped for %s: host has %u hardware "
                        "threads < %u requested\n",
                        r.name.c_str(), hostThreads, r.threads);
            continue;
        }
        if (r.wallNs >= ev.wallNs) {
            std::printf("GATE g4: %s (%.1f ms) not faster than event "
                        "(%.1f ms) on a %u-thread host\n",
                        r.name.c_str(), double(r.wallNs) * 1e-6,
                        double(ev.wallNs) * 1e-6, hostThreads);
            ok = false;
        }
    }

    std::printf("\n%-16s %10s %10s %10s %12s %14s\n", "mode", "wall ms",
                "speedup", "syncs/cyc", "barrier ms", "maxSyncWait ms");
    for (const Result &r : results) {
        std::printf("%-16s %10.1f %9.2fx %10.3f %12.2f %14.2f\n",
                    r.name.c_str(), double(r.wallNs) * 1e-6,
                    double(ev.wallNs) / double(r.wallNs), r.syncsPerCycle,
                    double(r.barrierWaitNs) * 1e-6,
                    double(r.maxDomainSyncWaitNs) * 1e-6);
    }
    std::printf("(speedup is vs the sequential event-driven scheduler; "
                "host has %u hardware threads)\n",
                hostThreads);

    JsonObject jcfg;
    jcfg.put("system", cfg.name)
        .put("workload", w.name)
        .put("cores", cfg.cores)
        .put("cycles", cycles)
        .put("domains", domains)
        .put("fifo_min_lookahead", fifoMin);
    std::vector<JsonObject> out;
    for (const Result &r : results) {
        JsonObject o;
        o.put("mode", r.name)
            .put("cycles", cycles)
            .put("instret", r.instret)
            .put("wall_ns", r.wallNs)
            .put("barrier_wait_ns", r.barrierWaitNs)
            .put("sync_epochs", r.syncEpochs)
            .put("syncs_per_cycle", r.syncsPerCycle)
            .put("effective_lookahead", r.effLookahead)
            .put("max_domain_sync_wait_ns", r.maxDomainSyncWaitNs)
            .put("speedup_vs_event", double(ev.wallNs) / double(r.wallNs))
            .putHex("digest", r.stateDigest)
            .put("digest_match", r.stateDigest == results[0].stateDigest);
        riscy::bench::putSimSpeed(o, r.instret, r.wallNs);
        out.push_back(std::move(o));
    }

    // One server-config row: the 21-domain serverConfig(16,4) topology
    // (16 hart domains + 4 L2 bank slices + DramCtl) under the same
    // event-vs-parallel-4 comparison, on a load-only accumulator so
    // snapshot digests fully capture the replayed state. Tracks that
    // the banked-front domain cuts stay profitable for PDES.
    {
        using namespace riscy::asmkit;
        SystemConfig scfg = SystemConfig::serverConfig(16, 4);
        scfg.scheduler = cmd::SchedulerKind::EventDriven;
        System ssys(scfg);
        Assembler a(kDramBase);
        a.li(5, kDramBase + 0x10000);
        a.li(6, 0);
        a.li(7, 0);
        auto loop = a.newLabel();
        a.bind(loop);
        a.andi(28, 6, 511);
        a.slli(28, 28, 3);
        a.add(28, 28, 5);
        a.ld(29, 0, 28);
        a.add(7, 7, 29);
        a.addi(6, 6, 1);
        a.j(loop);
        a.load(ssys.mem(), kDramBase);
        ssys.elaborate();
        std::vector<Addr> sstacks;
        for (uint32_t i = 0; i < 16; i++)
            sstacks.push_back(kDramBase + 0x200000 + i * 0x10000);
        ssys.start(kDramBase, 0, sstacks);
        const std::vector<uint8_t> ssnap = ssys.kernel().snapshot();
        const uint64_t scycles = 20000;
        auto run1 = [&](cmd::SchedulerKind kind, uint32_t threads) {
            ssys.kernel().restore(ssnap);
            if (threads)
                ssys.kernel().setParallelThreads(threads);
            ssys.kernel().setLookahead(0);
            ssys.kernel().setScheduler(kind);
            auto t0 = std::chrono::steady_clock::now();
            ssys.kernel().run(scycles);
            auto t1 = std::chrono::steady_clock::now();
            uint64_t ns = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count());
            return std::make_pair(ns,
                                  digest(ssys.kernel().snapshot()));
        };
        auto evLeg = run1(cmd::SchedulerKind::EventDriven, 0);
        auto paLeg = run1(cmd::SchedulerKind::Parallel, 4);
        bool match = evLeg.second == paLeg.second;
        std::printf("server-16c4b leg: event %.1f ms, parallel-4 %.1f "
                    "ms (%u domains, fifo-min %u) -> %s\n",
                    double(evLeg.first) * 1e-6,
                    double(paLeg.first) * 1e-6,
                    ssys.kernel().domainCount(),
                    ssys.kernel().fifoMinLookahead(),
                    match ? "digest match" : "DIVERGENCE");
        if (!match) {
            std::printf("GATE: server-config parallel leg diverged "
                        "from event\n");
            ok = false;
        }
        JsonObject o;
        o.put("mode", "server-16c4b-parallel-4")
            .put("cycles", scycles)
            .put("wall_ns", paLeg.first)
            .put("domains", uint64_t(ssys.kernel().domainCount()))
            .put("fifo_min_lookahead",
                 uint64_t(ssys.kernel().fifoMinLookahead()))
            .put("effective_lookahead",
                 uint64_t(ssys.kernel().effectiveLookahead()))
            .put("speedup_vs_event",
                 double(evLeg.first) / double(paLeg.first))
            .putHex("digest", paLeg.second)
            .put("digest_match", match);
        out.push_back(std::move(o));
    }

    bool wrote = writeBenchJson("parallel", jcfg, out);
    if (ci && !wrote) {
        std::fprintf(stderr, "GATE: --ci requires BENCH_parallel.json "
                             "to be written\n");
        ok = false;
    }

    return ok ? 0 : 1;
}
