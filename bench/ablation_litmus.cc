/**
 * @file
 * The litmus CI gate: full-corpus seed-matrix sweeps under both memory
 * models and both production schedulers, checked against the reference
 * enumerator; coverage obligations; a scheduler-equivalence cross
 * check; the negative control (TSO with the evict-kill disabled MUST
 * be caught, with a complete repro bundle); and a fuzz smoke campaign.
 *
 * Usage: ablation_litmus [--ci] [runs] [seed0] [out.json]
 *
 *   runs   seeds per (entry, model, scheduler) cell   (default 60)
 *   seed0  first seed of the matrix                   (default 1)
 *
 * Gates (each reported in the JSON config block and on stdout):
 *   g1 clean        zero forbidden outcomes and zero hangs everywhere
 *   g2 coverage     every per-entry mustObserve obligation reached
 *   g3 sched_equiv  per-cell outcome histograms identical under
 *                   EventDriven and Compiled, plus an exact per-seed
 *                   spot check under Exhaustive and Parallel
 *   g4 negative     MP under TSO with tsoEvictKill=false yields a
 *                   forbidden outcome within the seed matrix and the
 *                   repro bundle written for it is complete
 *   g5 fuzz         randomized smoke campaign clean under both models
 *
 * Without --ci the exit code is always 0 (small ad-hoc matrices
 * legitimately miss coverage obligations); with --ci it is 0 iff every
 * gate holds. g1/g3/g4 are run-count-independent correctness gates and
 * are reported either way.
 */
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "litmus/corpus.hh"
#include "litmus/fuzz.hh"
#include "litmus/runner.hh"

using namespace riscy;
using namespace riscy::litmus;
using cmd::SchedulerKind;

namespace {

const char *
schedName(SchedulerKind k)
{
    switch (k) {
    case SchedulerKind::Exhaustive: return "exhaustive";
    case SchedulerKind::EventDriven: return "event";
    case SchedulerKind::Parallel: return "parallel";
    case SchedulerKind::Compiled: return "compiled";
    }
    return "?";
}

uint64_t
nowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

bool
fileHas(const std::string &path, const char *needle)
{
    std::ifstream in(path);
    if (!in.good())
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str().find(needle) != std::string::npos;
}

struct Cell {
    const CorpusEntry *entry = nullptr;
    MemModel model = MemModel::Tso;
    SchedulerKind sched = SchedulerKind::EventDriven;
    SweepResult sw;
    uint64_t wallNs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool ci = false;
    uint32_t runs = 60;
    uint64_t seed0 = 1;
    std::string outPath;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--ci"))
            ci = true;
        else
            pos.push_back(argv[i]);
    }
    if (pos.size() > 0)
        runs = uint32_t(std::strtoul(pos[0], nullptr, 0));
    if (pos.size() > 1)
        seed0 = std::strtoull(pos[1], nullptr, 0);
    if (pos.size() > 2)
        outPath = pos[2];

    const SchedulerKind kMatrixScheds[] = {SchedulerKind::EventDriven,
                                           SchedulerKind::Compiled};

    // ---- Main matrix: corpus x models x schedulers x seeds ----------
    std::printf("litmus gate: %zu programs x 2 models x 2 schedulers x "
                "%u seeds (seed0=%" PRIu64 ")\n",
                corpus().size(), runs, seed0);
    std::printf("%-12s %-4s %-10s %9s %8s %9s %6s %6s\n", "test", "mdl",
                "sched", "outcomes", "allowed", "forbidden", "hangs",
                "cov");

    std::vector<Cell> cells;
    bool g1Clean = true;
    for (const CorpusEntry &e : corpus()) {
        for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
            for (SchedulerKind sk : kMatrixScheds) {
                RunConfig cfg;
                cfg.model = m;
                cfg.sched = sk;
                uint64_t t0 = nowNs();
                Cell c;
                c.entry = &e;
                c.model = m;
                c.sched = sk;
                c.sw = sweep(e.prog, cfg, seed0, runs);
                c.wallNs = nowNs() - t0;
                g1Clean &= c.sw.clean();
                std::printf("%-12s %-4s %-10s %9zu %8zu %9zu %6u %5.0f%%%s\n",
                            e.prog.name.c_str(), toString(m), schedName(sk),
                            c.sw.hist.size(), c.sw.allowed.size(),
                            c.sw.forbidden.size(), c.sw.hangs,
                            100.0 * c.sw.coverage(),
                            c.sw.clean() ? "" : "  <-- VIOLATION");
                cells.push_back(std::move(c));
            }
        }
    }

    // ---- g2: coverage obligations (per entry x model, any sched) ----
    bool g2Coverage = true;
    uint32_t obligations = 0, obligationsMet = 0;
    for (const CorpusEntry &e : corpus()) {
        for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
            const auto &must = m == MemModel::Tso ? e.mustObserveTso
                                                  : e.mustObserveWmm;
            for (Outcome o : must) {
                obligations++;
                bool seen = false;
                for (const Cell &c : cells)
                    if (c.entry == &e && c.model == m && c.sw.observed(o))
                        seen = true;
                if (seen) {
                    obligationsMet++;
                } else {
                    g2Coverage = false;
                    std::printf("coverage MISS: %s/%s never observed %s\n",
                                e.prog.name.c_str(), toString(m),
                                formatOutcome(e.prog, o).c_str());
                }
            }
        }
    }

    // ---- g3: scheduler equivalence --------------------------------
    // The kernel guarantees identical cycle-level behavior across
    // schedulers, so per-cell histograms must match exactly between
    // EventDriven and Compiled...
    bool g3Sched = true;
    for (size_t i = 0; i + 1 < cells.size(); i += 2) {
        if (cells[i].sw.hist != cells[i + 1].sw.hist) {
            g3Sched = false;
            std::printf("scheduler DIVERGENCE: %s/%s histograms differ "
                        "event vs compiled\n",
                        cells[i].entry->prog.name.c_str(),
                        toString(cells[i].model));
        }
    }
    // ...plus an exact per-seed spot check under the two debug
    // schedulers (too slow for the full matrix).
    for (const char *name : {"SB", "MP"}) {
        const CorpusEntry &e = corpusEntry(name);
        for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
            for (uint64_t s = seed0; s < seed0 + 3; s++) {
                RunConfig cfg;
                cfg.model = m;
                cfg.seed = s;
                cfg.sched = SchedulerKind::EventDriven;
                RunResult ref = runOnce(e.prog, cfg);
                for (SchedulerKind sk :
                     {SchedulerKind::Exhaustive, SchedulerKind::Parallel}) {
                    cfg.sched = sk;
                    RunResult r = runOnce(e.prog, cfg);
                    if (r.outcome != ref.outcome || r.hang != ref.hang) {
                        g3Sched = false;
                        std::printf("scheduler DIVERGENCE: %s/%s seed "
                                    "%" PRIu64 " %s != event\n",
                                    name, toString(m), s, schedName(sk));
                    }
                }
            }
        }
    }

    // ---- g4: negative control -------------------------------------
    // Disabling TSO's eviction kill must surface the MP reorder as a
    // forbidden outcome, and the repro bundle for it must be complete.
    const CorpusEntry &mp = corpusEntry("MP");
    RunConfig neg;
    neg.model = MemModel::Tso;
    neg.mutateCfg = [](SystemConfig &s) { s.core.tsoEvictKill = false; };
    uint32_t negRuns = runs < 60 ? 60 : runs;
    SweepResult negSw = sweep(mp.prog, neg, seed0, negRuns);
    bool g4Negative = !negSw.forbidden.empty();
    std::string negBundle;
    if (g4Negative) {
        neg.seed = negSw.firstForbiddenSeed;
        negBundle = "litmus_repro/ci-negative-control";
        RunResult rr = writeReproBundle(negBundle, mp.prog, neg, &negSw);
        g4Negative &= !rr.hang;
        for (const char *f : {"/repro.txt", "/trace.kanata",
                              "/trace_timeline.json", "/flight.txt"})
            g4Negative &= std::ifstream(negBundle + f).good();
        g4Negative &= fileHas(negBundle + "/repro.txt", "FORBIDDEN");
    }
    std::printf("negative control (tsoEvictKill=false): %s (seed "
                "%" PRIu64 ", bundle %s)\n",
                g4Negative ? "caught" : "NOT CAUGHT",
                negSw.firstForbiddenSeed,
                negBundle.empty() ? "-" : negBundle.c_str());

    // ---- g5: fuzz smoke -------------------------------------------
    bool g5Fuzz = true;
    uint64_t fuzzRuns = 0;
    uint32_t fuzzPrograms = 0;
    for (MemModel m : {MemModel::Tso, MemModel::Wmm}) {
        FuzzConfig fc;
        fc.run.model = m;
        fc.seed = 20260808 ^ uint64_t(m);
        fc.programs = 8;
        fc.runsPerProgram = 3;
        fc.bundleDir = "litmus_repro/ci-fuzz";
        FuzzResult fr = fuzz(fc);
        fuzzRuns += fr.runs;
        fuzzPrograms += fr.programs;
        g5Fuzz &= fr.clean();
        std::printf("fuzz smoke %s: %u programs, %" PRIu64
                    " runs, %zu failures, %u hangs\n",
                    toString(m), fr.programs, fr.runs, fr.failures.size(),
                    fr.hangs);
    }

    // ---- JSON -----------------------------------------------------
    bench::JsonObject config;
    config.put("runs_per_cell", runs)
        .put("seed0", seed0)
        .put("schedulers_matrix", "event,compiled")
        .put("schedulers_spot", "exhaustive,parallel")
        .put("obligations", obligations)
        .put("obligations_met", obligationsMet)
        .put("negative_control_seed", negSw.firstForbiddenSeed)
        .put("fuzz_programs", fuzzPrograms)
        .put("fuzz_runs", fuzzRuns)
        .put("gate_clean", g1Clean)
        .put("gate_coverage", g2Coverage)
        .put("gate_sched_equiv", g3Sched)
        .put("gate_negative_control", g4Negative)
        .put("gate_fuzz", g5Fuzz);

    std::vector<bench::JsonObject> rows;
    for (const Cell &c : cells) {
        bench::JsonObject row;
        row.put("test", c.entry->prog.name)
            .put("model", toString(c.model))
            .put("scheduler", schedName(c.sched))
            .put("runs", runs)
            .put("outcomes_seen", uint64_t(c.sw.hist.size()))
            .put("outcomes_allowed", uint64_t(c.sw.allowed.size()))
            .put("forbidden", uint64_t(c.sw.forbidden.size()))
            .put("hangs", c.sw.hangs)
            .put("coverage", c.sw.coverage())
            .put("wall_ms", double(c.wallNs) / 1e6);
        // Weak-outcome observation counts: the shaker's yield on the
        // buffering-only outcomes this entry is obliged to reach.
        const auto &must = c.model == MemModel::Tso
                               ? c.entry->mustObserveTso
                               : c.entry->mustObserveWmm;
        uint64_t weak = 0;
        for (Outcome o : must) {
            auto it = c.sw.hist.find(o);
            weak += it == c.sw.hist.end() ? 0 : it->second;
        }
        row.put("weak_obligations", uint64_t(must.size()))
            .put("weak_hits", weak);
        rows.push_back(std::move(row));
    }
    bench::writeBenchJson("litmus", config, rows, outPath);

    bool pass = g1Clean && g2Coverage && g3Sched && g4Negative && g5Fuzz;
    std::printf("gates: clean=%s coverage=%s sched_equiv=%s "
                "negative_control=%s fuzz=%s => %s\n",
                g1Clean ? "pass" : "FAIL", g2Coverage ? "pass" : "FAIL",
                g3Sched ? "pass" : "FAIL", g4Negative ? "pass" : "FAIL",
                g5Fuzz ? "pass" : "FAIL", pass ? "PASS" : "FAIL");
    return ci ? (pass ? 0 : 1) : 0;
}
