/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: run a
 * workload on a named configuration, collect event counts, and print
 * paper-style rows. Each fig*_ binary regenerates one table/figure of
 * the paper's evaluation (Section VI); EXPERIMENTS.md records the
 * paper-vs-measured comparison.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "workloads/workloads.hh"

namespace riscy::bench {

using workloads::Image;
using workloads::Workload;

struct RunResult {
    uint64_t cycles = 0;
    uint64_t instret = 0;
    System::EventCounts ev;
    /** CPI-stack JSON fragment (hart 0) when SystemConfig::obs.cpi was
     *  on; embed into a result row with JsonObject::putRaw. */
    std::string cpiJson;
    double ipc() const { return double(instret) / double(cycles); }
    /** Paper's single-core metric: 1 / cycle count. */
    double perf() const { return 1.0 / double(cycles); }
    double
    perKilo(uint64_t n) const
    {
        return 1000.0 * double(n) / double(instret);
    }
};

/** Run one single-threaded workload on a fresh system. */
inline RunResult
runOn(const SystemConfig &cfg, const Workload &w,
      uint64_t maxCycles = 400000000)
{
    System sys(cfg);
    Image img = w.build(sys, 1);
    sys.elaborate();
    RunResult r;
    r.cycles = workloads::runToCompletion(sys, img, maxCycles);
    r.instret = sys.instret(0);
    r.ev = sys.events(0);
    sys.writeTraces();
    if (const obs::CpiStack *cp = sys.cpi(0))
        r.cpiJson = cp->json(r.instret);
    return r;
}

/** Run one PARSEC workload with @p threads on the quad-core. */
inline uint64_t
runParsecRoi(bool tso, const Workload &w, uint32_t threads,
             uint64_t maxCycles = 400000000)
{
    SystemConfig cfg = SystemConfig::multicore(tso);
    System sys(cfg);
    Image img = w.build(sys, threads);
    sys.elaborate();
    workloads::runToCompletion(sys, img, maxCycles);
    return workloads::roiCycles(sys);
}

inline void
printHeader(const std::string &title,
            const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n%-14s", title.c_str(), "benchmark");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = " %12.3f")
{
    std::printf("%-14s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
    std::fflush(stdout);
}

inline double
geomean(const std::vector<double> &v)
{
    double acc = 1.0;
    for (double x : v)
        acc *= x;
    return std::pow(acc, 1.0 / double(v.size()));
}

inline double
harmonicMean(const std::vector<double> &v)
{
    double acc = 0;
    for (double x : v)
        acc += 1.0 / x;
    return double(v.size()) / acc;
}

// ---- machine-readable BENCH_*.json emission ------------------------
//
// Every bench binary that tracks a perf trajectory across PRs writes a
// BENCH_<name>.json through writeBenchJson() so the files share one
// schema: top-level bench name, host info (so speedups measured on a
// ci runner vs a laptop are interpretable), a config object, and an
// array of result rows (typically cycles / instret / wall_ns plus
// bench-specific fields).

/** Insertion-ordered JSON object builder (values pre-serialized). */
class JsonObject
{
  public:
    JsonObject &
    put(const std::string &k, const std::string &v)
    {
        return putRaw(k, "\"" + escape(v) + "\"");
    }
    JsonObject &put(const std::string &k, const char *v)
    {
        return put(k, std::string(v));
    }
    JsonObject &put(const std::string &k, bool v)
    {
        return putRaw(k, v ? "true" : "false");
    }
    JsonObject &
    put(const std::string &k, double v)
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return putRaw(k, buf);
    }
    JsonObject &
    put(const std::string &k, uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
        return putRaw(k, buf);
    }
    JsonObject &
    put(const std::string &k, int64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
        return putRaw(k, buf);
    }
    JsonObject &put(const std::string &k, int v)
    {
        return put(k, int64_t(v));
    }
    JsonObject &put(const std::string &k, unsigned v)
    {
        return put(k, uint64_t(v));
    }
    /** Digests and such, as a hex string (JSON numbers lose 64 bits). */
    JsonObject &
    putHex(const std::string &k, uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "\"%#llx\"", (unsigned long long)v);
        return putRaw(k, buf);
    }
    /** Nested object/array: value is inserted verbatim. */
    JsonObject &
    putRaw(const std::string &k, const std::string &jsonValue)
    {
        kv_.emplace_back(k, jsonValue);
        return *this;
    }

    /** Serialize; @p indent spaces of leading indentation per line,
     *  one key per line when nonzero, compact single line when 0. */
    std::string
    str(unsigned indent = 0) const
    {
        std::string pad(indent, ' ');
        std::string out = "{";
        for (size_t i = 0; i < kv_.size(); i++) {
            out += indent ? "\n" + pad + "  " : (i ? " " : "");
            out += "\"" + escape(kv_[i].first) + "\": " + kv_[i].second;
            if (i + 1 < kv_.size())
                out += ",";
        }
        out += indent ? "\n" + pad + "}" : "}";
        return out;
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::vector<std::pair<std::string, std::string>> kv_;
};

/**
 * Simulation-speed fields shared by every BENCH_*.json row: the host
 * wall time and the simulated instruction rate it implies. @p units
 * is retired instructions (kernel-only microbenches pass cycles —
 * their "retired unit" — so the speed trajectory stays comparable
 * across benches).
 */
inline JsonObject &
putSimSpeed(JsonObject &row, uint64_t units, uint64_t wallNs)
{
    row.put("wall_ms", double(wallNs) / 1e6);
    // KIPS = thousand retired units per host second.
    row.put("simulated_kips",
            wallNs ? 1e6 * double(units) / double(wallNs) : 0.0);
    // Stamped per row (not only in the top-level host object) so a
    // single row pasted out of a BENCH_*.json — e.g. a parallel
    // speedup measured on a 1-thread CI runner — carries the context
    // needed to interpret it.
    row.put("hardware_threads",
            uint64_t(std::thread::hardware_concurrency()));
    return row;
}

/** Host info stamped into every BENCH_*.json. */
inline JsonObject
hostInfo()
{
    JsonObject h;
    h.put("hardware_threads",
          uint64_t(std::thread::hardware_concurrency()));
#ifdef __VERSION__
    h.put("compiler", __VERSION__);
#endif
    return h;
}

/**
 * Write BENCH_<bench>.json (or @p path when nonempty) in the shared
 * schema. @return true if the file was written.
 */
inline bool
writeBenchJson(const std::string &bench, const JsonObject &config,
               const std::vector<JsonObject> &results,
               std::string path = "")
{
    if (path.empty())
        path = "BENCH_" + bench + ".json";
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench.c_str());
    std::fprintf(f, "  \"host\": %s,\n", hostInfo().str(2).c_str());
    std::fprintf(f, "  \"config\": %s,\n", config.str(2).c_str());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); i++) {
        std::fprintf(f, "    %s%s\n", results[i].str().c_str(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace riscy::bench
