/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: run a
 * workload on a named configuration, collect event counts, and print
 * paper-style rows. Each fig*_ binary regenerates one table/figure of
 * the paper's evaluation (Section VI); EXPERIMENTS.md records the
 * paper-vs-measured comparison.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "workloads/workloads.hh"

namespace riscy::bench {

using workloads::Image;
using workloads::Workload;

struct RunResult {
    uint64_t cycles = 0;
    uint64_t instret = 0;
    System::EventCounts ev;
    double ipc() const { return double(instret) / double(cycles); }
    /** Paper's single-core metric: 1 / cycle count. */
    double perf() const { return 1.0 / double(cycles); }
    double
    perKilo(uint64_t n) const
    {
        return 1000.0 * double(n) / double(instret);
    }
};

/** Run one single-threaded workload on a fresh system. */
inline RunResult
runOn(const SystemConfig &cfg, const Workload &w,
      uint64_t maxCycles = 400000000)
{
    System sys(cfg);
    Image img = w.build(sys, 1);
    sys.elaborate();
    RunResult r;
    r.cycles = workloads::runToCompletion(sys, img, maxCycles);
    r.instret = sys.instret(0);
    r.ev = sys.events(0);
    return r;
}

/** Run one PARSEC workload with @p threads on the quad-core. */
inline uint64_t
runParsecRoi(bool tso, const Workload &w, uint32_t threads,
             uint64_t maxCycles = 400000000)
{
    SystemConfig cfg = SystemConfig::multicore(tso);
    System sys(cfg);
    Image img = w.build(sys, threads);
    sys.elaborate();
    workloads::runToCompletion(sys, img, maxCycles);
    return workloads::roiCycles(sys);
}

inline void
printHeader(const std::string &title,
            const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n%-14s", title.c_str(), "benchmark");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = " %12.3f")
{
    std::printf("%-14s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
    std::fflush(stdout);
}

inline double
geomean(const std::vector<double> &v)
{
    double acc = 1.0;
    for (double x : v)
        acc *= x;
    return std::pow(acc, 1.0 / double(v.size()));
}

inline double
harmonicMean(const std::vector<double> &v)
{
    double acc = 0;
    for (double x : v)
        acc += 1.0 / x;
    return double(v.size()) / acc;
}

} // namespace riscy::bench
