/**
 * @file
 * Paper Fig. 19: IPCs of BOOM and RiscyOO-T+R+ on SPEC (gobmk, hmmer
 * and libquantum excluded, as in the paper). Shape: comparable
 * harmonic means, with T+R+ winning the TLB-heavy benchmarks (mcf)
 * and the BOOM-match winning some branchy ones.
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto specs = workloads::specWorkloads();
    printHeader("Fig. 19: IPC, BOOM-match vs RiscyOO-T+R+",
                {"BOOM-like", "T+R+"});
    std::vector<double> ib, it;
    for (const auto &w : specs) {
        if (w.name == "gobmk" || w.name == "hmmer" ||
            w.name == "libquantum")
            continue; // the paper has no BOOM numbers for these
        RunResult b = runOn(SystemConfig::boomLike(), w);
        RunResult t = runOn(SystemConfig::riscyooTPlusRPlus(), w);
        ib.push_back(b.ipc());
        it.push_back(t.ipc());
        printRow(w.name, {b.ipc(), t.ipc()});
    }
    printRow("har-mean", {harmonicMean(ib), harmonicMean(it)});
    std::printf("(paper: similar harmonic means; T+R+ wins mcf "
                "0.16 vs 0.10)\n");
    return 0;
}
