/**
 * @file
 * Paper Fig. 16: L1 D TLB misses, L2 TLB misses, branch
 * mispredictions, L1 D cache misses and L2 misses per thousand
 * instructions on RiscyOO-T+. Shape to reproduce: mcf/astar/omnetpp
 * tower in the TLB columns; libquantum towers in the cache columns;
 * hmmer/h264ref are near zero everywhere; sjeng/gobmk lead BrPred.
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto specs = workloads::specWorkloads();
    printHeader("Fig. 16: misses per kilo-instruction (RiscyOO-T+)",
                {"DTLB", "L2TLB", "BrPred", "D$", "L2$"});
    for (const auto &w : specs) {
        RunResult r = runOn(SystemConfig::riscyooTPlus(), w);
        printRow(w.name,
                 {r.perKilo(r.ev.dtlbMisses), r.perKilo(r.ev.l2tlbMisses),
                  r.perKilo(r.ev.branchMispredicts),
                  r.perKilo(r.ev.l1dMisses), r.perKilo(r.ev.l2Misses)});
    }
    std::printf("(paper: mcf/astar/omnetpp DTLB 91-133; hmmer/h264ref "
                "near zero; sjeng BrPred ~29)\n");
    return 0;
}
