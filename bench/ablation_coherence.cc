/**
 * @file
 * Ablation for the paper's two suggested extensions, implemented in
 * this reproduction:
 *
 *  - MESI (Section V-D: "it should not be difficult to extend the MSI
 *    protocol to a MESI protocol"): on a read-then-modify working set,
 *    E grants make private stores free of upgrade transactions.
 *  - SQ store prefetch (Section V-B: "Currently we have not
 *    implemented this feature"): committed-store drains hit in the L1
 *    because the SQ acquired M ahead of time.
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    // MESI vs MSI on the PARSEC-profile kernels (private-chunk
    // kernels read-then-write their data: the E state pays off).
    auto parsec = workloads::parsecWorkloads();
    printHeader("Ablation: MESI vs MSI (quad-core ROI cycles)",
                {"MSI", "MESI", "speedup"});
    std::vector<double> sp;
    for (const auto &w : parsec) {
        uint64_t roi[2];
        for (int mesi = 0; mesi < 2; mesi++) {
            SystemConfig cfg = SystemConfig::multicore(true);
            cfg.mem.l2.mesi = mesi != 0;
            System sys(cfg);
            workloads::Image img = w.build(sys, 4);
            sys.elaborate();
            workloads::runToCompletion(sys, img);
            roi[mesi] = workloads::roiCycles(sys);
        }
        double ratio = double(roi[0]) / double(roi[1]);
        sp.push_back(ratio);
        printRow(w.name, {double(roi[0]), double(roi[1]), ratio},
                 " %12.4g");
    }
    printRow("geo-mean", {0, 0, geomean(sp)}, " %12.4g");

    // Store prefetch on the SPEC-profile kernels (single core, T+).
    auto spec = workloads::specWorkloads();
    printHeader("Ablation: SQ store prefetch (cycles)",
                {"off", "on", "speedup"});
    std::vector<double> sp2;
    for (const auto &w : spec) {
        uint64_t cyc[2];
        for (int pf = 0; pf < 2; pf++) {
            SystemConfig cfg = SystemConfig::riscyooTPlus();
            cfg.core.storePrefetch = pf != 0;
            cyc[pf] = runOn(cfg, w).cycles;
        }
        double ratio = double(cyc[0]) / double(cyc[1]);
        sp2.push_back(ratio);
        printRow(w.name, {double(cyc[0]), double(cyc[1]), ratio},
                 " %12.4g");
    }
    printRow("geo-mean", {0, 0, geomean(sp2)}, " %12.4g");
    return 0;
}
