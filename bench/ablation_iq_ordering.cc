/**
 * @file
 * Ablation for Section IV-D: the two legal CM orderings of the issue
 * queue (wakeup < issue < enter vs issue < wakeup < enter).
 *
 * Part 1 demonstrates a result the full core makes concrete: with
 * pipelined stage latches (deq < enq), the issue < wakeup ordering
 * closes a combinational cycle through the writeback stage, and the
 * elaborator rejects the design — the same check the BSV compiler
 * performs. The ordering exploration therefore runs on the paper's
 * own Section IV testbench (Part 2), where the execution pipeline is
 * built from conflict-free FIFOs: both orderings elaborate and the
 * "fast" one issues a woken instruction in the same cycle.
 */
#include <cstdio>
#include <deque>

#include "core/cmd.hh"
#include "proc/system.hh"

using namespace cmd;
using namespace riscy;

namespace {

/** Minimal uop for the testbench. */
struct TInst {
    uint8_t src = 0, dst = 0;
};

uint64_t
runChain(IssueQueue::Ordering order, uint32_t chainLen)
{
    Kernel k;
    IssueQueue iq(k, "iq", 8, order);
    CfFifo<Uop> exec1(k, "exec1", 2), exec2(k, "exec2", 2);
    Scoreboard sb(k, "sb", 128);

    std::deque<Uop> program;
    for (uint32_t i = 0; i < chainLen; i++) {
        Uop u;
        u.inst = isa::decode(0x00b50533); // add (reads rs1/rs2)
        u.ps1 = static_cast<PhysReg>(i);
        u.ps2 = 0;
        u.pd = static_cast<PhysReg>(i + 1);
        u.hasPd = true;
        program.push_back(u);
    }
    Reg<uint32_t> retired(k, "retired", 0);

    Rule &wb = k.rule("doRegWrite", [&] {
        Uop u = exec2.deq();
        iq.wakeup(u.pd);
        sb.setReady(u.pd);
        retired.write(retired.read() + 1);
    });
    wb.when([&] { return exec2.canDeq(); });
    wb.uses({&exec2.deqM, &iq.wakeupM, &sb.setReadyM});

    Rule &ex = k.rule("doExec", [&] { exec2.enq(exec1.deq()); });
    ex.when([&] { return exec1.canDeq() && exec2.canEnq(); });
    ex.uses({&exec1.deqM, &exec2.enqM});

    Rule &iss = k.rule("doIssue", [&] { exec1.enq(iq.issue()); });
    iss.when([&] { return iq.canIssue() && exec1.canEnq(); });
    iss.uses({&iq.issueM, &exec1.enqM});

    Rule &ren = k.rule("doRename", [&] {
        require(!program.empty() && iq.canEnter());
        Uop u = program.front();
        bool rdy1 = sb.rdy(u.ps1);
        sb.setNotReady(u.pd);
        iq.enter(u, rdy1, true);
        program.pop_front();
    });
    ren.when([&] { return !program.empty(); });
    ren.uses({&sb.rdyM, &sb.setNotReadyM, &iq.enterM});

    k.elaborate();
    // Register 0 starts ready; the chain wakes up link by link.
    k.runUntil([&] { return retired.read() == chainLen; }, 100000);
    return k.cycleCount();
}

} // namespace

int
main()
{
    std::printf("\n== Ablation: IQ conflict-matrix ordering ==\n");

    // Part 1: the full core rejects issue < wakeup < enter.
    {
        SystemConfig cfg = SystemConfig::riscyooTPlus();
        cfg.core.iqOrder = IssueQueue::Ordering::IssueWakeupEnter;
        cfg.cores = 1;
        bool rejected = false;
        try {
            System sys(cfg);
            sys.elaborate();
        } catch (const ElaborationError &e) {
            rejected = true;
            std::printf("full core with issue<wakeup<enter: REJECTED "
                        "at elaboration\n  (%.120s...)\n", e.what());
        }
        if (!rejected)
            std::printf("full core with issue<wakeup<enter: "
                        "unexpectedly elaborated!\n");
        std::printf("with pipelined stage latches (deq<enq), "
                    "issue<wakeup closes a combinational cycle through "
                    "write-back -- the elaborator catches it, like the "
                    "BSV compiler (paper Section II).\n\n");
    }

    // Part 2: both orderings on the Section IV testbench.
    uint32_t n = 96;
    uint64_t fast =
        runChain(IssueQueue::Ordering::WakeupIssueEnter, n);
    uint64_t slow =
        runChain(IssueQueue::Ordering::IssueWakeupEnter, n);
    std::printf("dependence chain of %u:\n", n);
    std::printf("  wakeup<issue<enter : %6llu cycles\n",
                (unsigned long long)fast);
    std::printf("  issue<wakeup<enter : %6llu cycles\n",
                (unsigned long long)slow);
    std::printf("the paper's preferred ordering saves %.1f%% "
                "(Section IV-D: wake and issue in the same cycle)\n",
                100.0 * double(slow - fast) / double(slow));
    return 0;
}
