/**
 * @file
 * Paper Fig. 17: RiscyOO-C-, Rocket-10 and Rocket-120 normalized to
 * RiscyOO-T+ (higher is better). Shape: Rocket-120 far below both OOO
 * configs on every benchmark; Rocket-10 competitive with C- but below
 * T+. (Our in-order baseline is more conservative than Rocket, so the
 * OOO advantage is larger than the paper's 53%/319% — see
 * EXPERIMENTS.md.)
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto specs = workloads::specWorkloads();
    printHeader("Fig. 17: performance normalized to RiscyOO-T+",
                {"RiscyOO-C-", "Rocket-10", "Rocket-120"});
    std::vector<double> gc, g10, g120;
    for (const auto &w : specs) {
        RunResult t = runOn(SystemConfig::riscyooTPlus(), w);
        RunResult c = runOn(SystemConfig::riscyooCMinus(), w);
        RunResult r10 = runOn(SystemConfig::rocket(10), w);
        RunResult r120 = runOn(SystemConfig::rocket(120), w);
        double nc = double(t.cycles) / c.cycles;
        double n10 = double(t.cycles) / r10.cycles;
        double n120 = double(t.cycles) / r120.cycles;
        gc.push_back(nc);
        g10.push_back(n10);
        g120.push_back(n120);
        printRow(w.name, {nc, n10, n120});
    }
    printRow("geo-mean", {geomean(gc), geomean(g10), geomean(g120)});
    std::printf("(paper: C- 0.93, Rocket-10 0.65, Rocket-120 0.24 of T+)\n");
    return 0;
}
