/**
 * @file
 * Paper Fig. 20: PARSEC-profile kernels on the quad-core under TSO
 * and WMM with 1/2/4 threads, normalized to TSO-1 (higher is
 * better). Shape to reproduce: near-linear scaling for the
 * data-parallel kernels, and *no discernible difference between TSO
 * and WMM* (the paper's headline multicore claim; TSO eviction kills
 * are rare).
 */
#include "bench_common.hh"

using namespace riscy;
using namespace riscy::bench;

int
main()
{
    auto ws = workloads::parsecWorkloads();
    printHeader("Fig. 20: normalized ROI performance (to TSO-1)",
                {"tso-1", "wmm-1", "tso-2", "wmm-2", "tso-4", "wmm-4"});
    std::vector<double> cols[6];
    for (const auto &w : ws) {
        uint64_t base = runParsecRoi(true, w, 1);
        std::vector<double> row;
        int c = 0;
        for (uint32_t th : {1u, 2u, 4u}) {
            for (bool tso : {true, false}) {
                uint64_t roi = (tso && th == 1)
                                   ? base
                                   : runParsecRoi(tso, w, th);
                double norm = double(base) / double(roi);
                row.push_back(norm);
                cols[c++].push_back(norm);
            }
        }
        printRow(w.name, row);
    }
    std::vector<double> gm;
    for (auto &c : cols)
        gm.push_back(geomean(c));
    printRow("geo-mean", gm);
    std::printf("(paper: TSO ~ WMM at every thread count; <=0.25 "
                "eviction kills per kinst)\n");
    return 0;
}
