/**
 * @file
 * Paper Fig. 21: ASIC synthesis results (32 nm): max frequency and
 * logic-only NAND2-equivalent gate count for RiscyOO-T+ and
 * RiscyOO-T+R+, via the analytical model in src/synth. The paper
 * reports 1.1/1.0 GHz and 1.78M/1.89M gates (+6.2% for T+R+).
 */
#include <cstdio>

#include "proc/config.hh"
#include "synth/area_model.hh"

using namespace riscy;

int
main()
{
    std::printf("\n== Fig. 21: ASIC synthesis estimates ==\n");
    std::printf("%-14s %12s %16s\n", "config", "maxFreq", "NAND2 gates");
    double prev = 0;
    for (const SystemConfig &s :
         {SystemConfig::riscyooTPlus(), SystemConfig::riscyooTPlusRPlus()}) {
        synth::SynthResult r = synth::estimate(s.core);
        std::printf("%-14s %9.2f GHz %12.2f M\n", s.name.c_str(),
                    r.maxGhz, r.nand2Mgates);
        if (prev > 0) {
            std::printf("T+R+ area overhead: %.1f%% (paper: 6.2%%)\n",
                        100.0 * (r.nand2Mgates - prev) / prev);
        }
        prev = r.nand2Mgates;
    }
    auto b = synth::estimateBreakdown(SystemConfig::riscyooTPlus().core);
    std::printf("\nT+ logic breakdown (NAND2-equivalents):\n");
    std::printf("  frontend (predictors) %10.0f\n", b.frontend);
    std::printf("  rename/checkpoints    %10.0f\n", b.rename);
    std::printf("  ROB                   %10.0f\n", b.rob);
    std::printf("  issue queues          %10.0f\n", b.issue);
    std::printf("  PRF/bypass/ALUs       %10.0f\n", b.regfile);
    std::printf("  LSQ/SB                %10.0f\n", b.lsu);
    std::printf("  TLB/cache control     %10.0f\n", b.memIf);
    std::printf("(paper: predictors dominate the logic area)\n");
    return 0;
}
