# Empty compiler generated dependencies file for fig17_vs_inorder.
# This may be replaced when dependencies are built.
