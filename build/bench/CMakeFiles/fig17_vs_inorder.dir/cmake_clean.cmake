file(REMOVE_RECURSE
  "CMakeFiles/fig17_vs_inorder.dir/fig17_vs_inorder.cc.o"
  "CMakeFiles/fig17_vs_inorder.dir/fig17_vs_inorder.cc.o.d"
  "fig17_vs_inorder"
  "fig17_vs_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_vs_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
