file(REMOVE_RECURSE
  "CMakeFiles/fig15_tlb_opt.dir/fig15_tlb_opt.cc.o"
  "CMakeFiles/fig15_tlb_opt.dir/fig15_tlb_opt.cc.o.d"
  "fig15_tlb_opt"
  "fig15_tlb_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tlb_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
