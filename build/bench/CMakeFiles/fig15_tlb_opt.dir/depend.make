# Empty dependencies file for fig15_tlb_opt.
# This may be replaced when dependencies are built.
