file(REMOVE_RECURSE
  "CMakeFiles/fig16_miss_rates.dir/fig16_miss_rates.cc.o"
  "CMakeFiles/fig16_miss_rates.dir/fig16_miss_rates.cc.o.d"
  "fig16_miss_rates"
  "fig16_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
