# Empty compiler generated dependencies file for fig18_vs_wide.
# This may be replaced when dependencies are built.
