file(REMOVE_RECURSE
  "CMakeFiles/fig18_vs_wide.dir/fig18_vs_wide.cc.o"
  "CMakeFiles/fig18_vs_wide.dir/fig18_vs_wide.cc.o.d"
  "fig18_vs_wide"
  "fig18_vs_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_vs_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
