# Empty compiler generated dependencies file for ablation_iq_ordering.
# This may be replaced when dependencies are built.
