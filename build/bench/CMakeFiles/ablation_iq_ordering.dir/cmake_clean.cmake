file(REMOVE_RECURSE
  "CMakeFiles/ablation_iq_ordering.dir/ablation_iq_ordering.cc.o"
  "CMakeFiles/ablation_iq_ordering.dir/ablation_iq_ordering.cc.o.d"
  "ablation_iq_ordering"
  "ablation_iq_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iq_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
