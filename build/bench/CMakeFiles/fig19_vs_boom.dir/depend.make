# Empty dependencies file for fig19_vs_boom.
# This may be replaced when dependencies are built.
