file(REMOVE_RECURSE
  "CMakeFiles/fig19_vs_boom.dir/fig19_vs_boom.cc.o"
  "CMakeFiles/fig19_vs_boom.dir/fig19_vs_boom.cc.o.d"
  "fig19_vs_boom"
  "fig19_vs_boom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_vs_boom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
