file(REMOVE_RECURSE
  "CMakeFiles/fig21_synthesis.dir/fig21_synthesis.cc.o"
  "CMakeFiles/fig21_synthesis.dir/fig21_synthesis.cc.o.d"
  "fig21_synthesis"
  "fig21_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
