# Empty dependencies file for fig21_synthesis.
# This may be replaced when dependencies are built.
