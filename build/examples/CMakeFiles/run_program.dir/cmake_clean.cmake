file(REMOVE_RECURSE
  "CMakeFiles/run_program.dir/run_program.cpp.o"
  "CMakeFiles/run_program.dir/run_program.cpp.o.d"
  "run_program"
  "run_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
