# Empty compiler generated dependencies file for iq_concurrency.
# This may be replaced when dependencies are built.
