file(REMOVE_RECURSE
  "CMakeFiles/iq_concurrency.dir/iq_concurrency.cpp.o"
  "CMakeFiles/iq_concurrency.dir/iq_concurrency.cpp.o.d"
  "iq_concurrency"
  "iq_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
