# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
include("/root/repo/build/tests/test_ooo[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_lsq[1]_include.cmake")
include("/root/repo/build/tests/test_timed_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
