
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_golden.cc" "tests/CMakeFiles/test_golden.dir/test_golden.cc.o" "gcc" "tests/CMakeFiles/test_golden.dir/test_golden.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/repro_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/repro_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/repro_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/repro_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/repro_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ooo/CMakeFiles/repro_ooo.dir/DependInfo.cmake"
  "/root/repo/build/src/lsq/CMakeFiles/repro_lsq.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/repro_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/repro_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
