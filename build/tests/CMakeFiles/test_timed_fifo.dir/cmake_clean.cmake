file(REMOVE_RECURSE
  "CMakeFiles/test_timed_fifo.dir/test_timed_fifo.cc.o"
  "CMakeFiles/test_timed_fifo.dir/test_timed_fifo.cc.o.d"
  "test_timed_fifo"
  "test_timed_fifo.pdb"
  "test_timed_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
