file(REMOVE_RECURSE
  "CMakeFiles/repro_frontend.dir/predictors.cc.o"
  "CMakeFiles/repro_frontend.dir/predictors.cc.o.d"
  "librepro_frontend.a"
  "librepro_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
