# Empty compiler generated dependencies file for repro_frontend.
# This may be replaced when dependencies are built.
