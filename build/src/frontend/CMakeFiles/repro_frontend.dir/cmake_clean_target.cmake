file(REMOVE_RECURSE
  "librepro_frontend.a"
)
