file(REMOVE_RECURSE
  "CMakeFiles/repro_asmkit.dir/assembler.cc.o"
  "CMakeFiles/repro_asmkit.dir/assembler.cc.o.d"
  "librepro_asmkit.a"
  "librepro_asmkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
