# Empty compiler generated dependencies file for repro_asmkit.
# This may be replaced when dependencies are built.
