file(REMOVE_RECURSE
  "librepro_asmkit.a"
)
