
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooo/engine.cc" "src/ooo/CMakeFiles/repro_ooo.dir/engine.cc.o" "gcc" "src/ooo/CMakeFiles/repro_ooo.dir/engine.cc.o.d"
  "/root/repo/src/ooo/iq.cc" "src/ooo/CMakeFiles/repro_ooo.dir/iq.cc.o" "gcc" "src/ooo/CMakeFiles/repro_ooo.dir/iq.cc.o.d"
  "/root/repo/src/ooo/rob.cc" "src/ooo/CMakeFiles/repro_ooo.dir/rob.cc.o" "gcc" "src/ooo/CMakeFiles/repro_ooo.dir/rob.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
