file(REMOVE_RECURSE
  "CMakeFiles/repro_ooo.dir/engine.cc.o"
  "CMakeFiles/repro_ooo.dir/engine.cc.o.d"
  "CMakeFiles/repro_ooo.dir/iq.cc.o"
  "CMakeFiles/repro_ooo.dir/iq.cc.o.d"
  "CMakeFiles/repro_ooo.dir/rob.cc.o"
  "CMakeFiles/repro_ooo.dir/rob.cc.o.d"
  "librepro_ooo.a"
  "librepro_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
