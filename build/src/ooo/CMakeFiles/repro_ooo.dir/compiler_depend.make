# Empty compiler generated dependencies file for repro_ooo.
# This may be replaced when dependencies are built.
