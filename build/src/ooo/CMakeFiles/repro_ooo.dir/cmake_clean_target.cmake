file(REMOVE_RECURSE
  "librepro_ooo.a"
)
