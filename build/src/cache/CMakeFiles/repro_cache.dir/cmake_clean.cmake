file(REMOVE_RECURSE
  "CMakeFiles/repro_cache.dir/l1.cc.o"
  "CMakeFiles/repro_cache.dir/l1.cc.o.d"
  "CMakeFiles/repro_cache.dir/l2.cc.o"
  "CMakeFiles/repro_cache.dir/l2.cc.o.d"
  "librepro_cache.a"
  "librepro_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
