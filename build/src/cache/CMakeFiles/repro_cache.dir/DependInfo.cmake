
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/l1.cc" "src/cache/CMakeFiles/repro_cache.dir/l1.cc.o" "gcc" "src/cache/CMakeFiles/repro_cache.dir/l1.cc.o.d"
  "/root/repo/src/cache/l2.cc" "src/cache/CMakeFiles/repro_cache.dir/l2.cc.o" "gcc" "src/cache/CMakeFiles/repro_cache.dir/l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/repro_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/repro_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
