# Empty dependencies file for repro_cache.
# This may be replaced when dependencies are built.
