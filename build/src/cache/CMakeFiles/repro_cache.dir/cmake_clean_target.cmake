file(REMOVE_RECURSE
  "librepro_cache.a"
)
