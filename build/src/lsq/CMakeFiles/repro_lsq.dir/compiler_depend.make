# Empty compiler generated dependencies file for repro_lsq.
# This may be replaced when dependencies are built.
