file(REMOVE_RECURSE
  "CMakeFiles/repro_lsq.dir/lsq.cc.o"
  "CMakeFiles/repro_lsq.dir/lsq.cc.o.d"
  "CMakeFiles/repro_lsq.dir/store_buffer.cc.o"
  "CMakeFiles/repro_lsq.dir/store_buffer.cc.o.d"
  "librepro_lsq.a"
  "librepro_lsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
