file(REMOVE_RECURSE
  "librepro_lsq.a"
)
