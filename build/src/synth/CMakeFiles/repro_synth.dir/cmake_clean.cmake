file(REMOVE_RECURSE
  "CMakeFiles/repro_synth.dir/area_model.cc.o"
  "CMakeFiles/repro_synth.dir/area_model.cc.o.d"
  "librepro_synth.a"
  "librepro_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
