file(REMOVE_RECURSE
  "CMakeFiles/repro_tlb.dir/tlb.cc.o"
  "CMakeFiles/repro_tlb.dir/tlb.cc.o.d"
  "librepro_tlb.a"
  "librepro_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
