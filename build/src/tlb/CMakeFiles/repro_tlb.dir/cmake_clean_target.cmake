file(REMOVE_RECURSE
  "librepro_tlb.a"
)
