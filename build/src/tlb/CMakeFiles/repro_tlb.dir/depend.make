# Empty dependencies file for repro_tlb.
# This may be replaced when dependencies are built.
