file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/kernel.cc.o"
  "CMakeFiles/repro_core.dir/kernel.cc.o.d"
  "CMakeFiles/repro_core.dir/log.cc.o"
  "CMakeFiles/repro_core.dir/log.cc.o.d"
  "CMakeFiles/repro_core.dir/stats.cc.o"
  "CMakeFiles/repro_core.dir/stats.cc.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
