# Empty dependencies file for repro_proc.
# This may be replaced when dependencies are built.
