file(REMOVE_RECURSE
  "CMakeFiles/repro_proc.dir/inorder_core.cc.o"
  "CMakeFiles/repro_proc.dir/inorder_core.cc.o.d"
  "CMakeFiles/repro_proc.dir/ooo_core.cc.o"
  "CMakeFiles/repro_proc.dir/ooo_core.cc.o.d"
  "CMakeFiles/repro_proc.dir/system.cc.o"
  "CMakeFiles/repro_proc.dir/system.cc.o.d"
  "librepro_proc.a"
  "librepro_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
