file(REMOVE_RECURSE
  "librepro_proc.a"
)
