file(REMOVE_RECURSE
  "CMakeFiles/repro_isa.dir/exec.cc.o"
  "CMakeFiles/repro_isa.dir/exec.cc.o.d"
  "CMakeFiles/repro_isa.dir/golden.cc.o"
  "CMakeFiles/repro_isa.dir/golden.cc.o.d"
  "CMakeFiles/repro_isa.dir/inst.cc.o"
  "CMakeFiles/repro_isa.dir/inst.cc.o.d"
  "librepro_isa.a"
  "librepro_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
