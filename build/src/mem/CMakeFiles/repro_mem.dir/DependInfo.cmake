
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/repro_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/mem/CMakeFiles/repro_mem.dir/memory.cc.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/memory.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/repro_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/repro_mem.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
