file(REMOVE_RECURSE
  "CMakeFiles/repro_mem.dir/dram.cc.o"
  "CMakeFiles/repro_mem.dir/dram.cc.o.d"
  "CMakeFiles/repro_mem.dir/memory.cc.o"
  "CMakeFiles/repro_mem.dir/memory.cc.o.d"
  "CMakeFiles/repro_mem.dir/page_table.cc.o"
  "CMakeFiles/repro_mem.dir/page_table.cc.o.d"
  "librepro_mem.a"
  "librepro_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
